"""Soft-margin kernel SVM trained with Sequential Minimal Optimization.

The paper's second representative learner (Figure 6) is an SVM with RBF
kernel.  Since no off-the-shelf SVM is available in this environment, this
module implements the binary soft-margin dual with Platt-style SMO:
repeatedly pick a pair of multipliers violating the KKT conditions, solve
the two-variable subproblem analytically, and update the bias.

The implementation follows the "simplified SMO" structure (full outer
passes alternating with non-bound passes) with a vectorized error cache; it
is not libsvm-fast, but converges reliably on the sub-thousand-row tables
the paper uses.  Multiclass problems are handled by
:class:`repro.mining.multiclass.OneVsOneClassifier`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .base import Classifier, check_fitted, validate_Xy
from .kernels import linear_kernel, polynomial_kernel, rbf_kernel, resolve_gamma

__all__ = ["BinarySVM", "SVMClassifier"]


class BinarySVM(Classifier):
    """Two-class kernel SVM (labels are mapped internally to -1/+1).

    Parameters
    ----------
    C:
        Soft-margin penalty.
    kernel:
        ``"rbf"``, ``"linear"`` or ``"poly"``.
    gamma:
        RBF bandwidth (float, ``"scale"`` or ``"auto"``); ignored by other
        kernels.
    degree / coef0:
        Polynomial kernel parameters.
    tol:
        KKT violation tolerance.
    max_passes:
        Number of consecutive full passes without any update before SMO
        declares convergence.
    max_iter:
        Hard cap on examine-all sweeps (safety valve; hitting it leaves a
        slightly sub-optimal but usable model).
    seed:
        Seed for the second-multiplier tie-break randomization.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: str = "rbf",
        gamma: Union[float, str] = "scale",
        degree: int = 3,
        coef0: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 200,
        seed: int = 0,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if kernel not in ("rbf", "linear", "poly"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = float(C)
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self._gamma_value: Optional[float] = None

    # ------------------------------------------------------------------
    # kernel plumbing
    # ------------------------------------------------------------------
    def _kernel_matrix(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(X, Z, gamma=self._gamma_value)
        if self.kernel == "linear":
            return linear_kernel(X, Z)
        return polynomial_kernel(X, Z, degree=self.degree, coef0=self.coef0)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinarySVM":
        X, y = validate_Xy(X, y)
        self._classes = np.unique(y)
        if len(self._classes) == 1:
            # Degenerate but reachable with extreme class skew: predict the
            # single observed class.
            self._constant = self._classes[0]
            self._fitted = True
            return self
        if len(self._classes) != 2:
            raise ValueError(
                f"BinarySVM needs exactly 2 classes, got {len(self._classes)}; "
                "wrap with OneVsOneClassifier for multiclass problems"
            )
        self._constant = None
        signs = np.where(y == self._classes[1], 1.0, -1.0)

        if self.kernel == "rbf":
            self._gamma_value = resolve_gamma(self.gamma, X)

        n = X.shape[0]
        K = self._kernel_matrix(X, X)
        alphas = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        def f(i: int) -> float:
            return float((alphas * signs) @ K[:, i] + b)

        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iter:
            num_changed = 0
            for i in range(n):
                e_i = f(i) - signs[i]
                if (signs[i] * e_i < -self.tol and alphas[i] < self.C) or (
                    signs[i] * e_i > self.tol and alphas[i] > 0
                ):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    e_j = f(j) - signs[j]
                    alpha_i_old, alpha_j_old = alphas[i], alphas[j]
                    if signs[i] != signs[j]:
                        low = max(0.0, alphas[j] - alphas[i])
                        high = min(self.C, self.C + alphas[j] - alphas[i])
                    else:
                        low = max(0.0, alphas[i] + alphas[j] - self.C)
                        high = min(self.C, alphas[i] + alphas[j])
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    alphas[j] -= signs[j] * (e_i - e_j) / eta
                    alphas[j] = float(np.clip(alphas[j], low, high))
                    if abs(alphas[j] - alpha_j_old) < 1e-7:
                        continue
                    alphas[i] += signs[i] * signs[j] * (alpha_j_old - alphas[j])

                    b1 = (
                        b
                        - e_i
                        - signs[i] * (alphas[i] - alpha_i_old) * K[i, i]
                        - signs[j] * (alphas[j] - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - e_j
                        - signs[i] * (alphas[i] - alpha_i_old) * K[i, j]
                        - signs[j] * (alphas[j] - alpha_j_old) * K[j, j]
                    )
                    if 0 < alphas[i] < self.C:
                        b = b1
                    elif 0 < alphas[j] < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    num_changed += 1
            iterations += 1
            passes = passes + 1 if num_changed == 0 else 0

        support = alphas > 1e-8
        self._support_vectors = X[support].copy()
        self._support_alphas = alphas[support]
        self._support_signs = signs[support]
        self._bias = b
        self.n_support_ = int(support.sum())
        self.n_iterations_ = iterations
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin for each row (positive means ``classes_[1]``)."""
        check_fitted(self)
        X, _ = validate_Xy(X)
        if self._constant is not None:
            return np.zeros(X.shape[0])
        if self.n_support_ == 0:
            return np.full(X.shape[0], self._bias)
        K = self._kernel_matrix(X, self._support_vectors)
        return K @ (self._support_alphas * self._support_signs) + self._bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X, _ = validate_Xy(X)
        if self._constant is not None:
            return np.full(X.shape[0], self._constant)
        margins = self.decision_function(X)
        return np.where(margins >= 0, self._classes[1], self._classes[0])


def SVMClassifier(
    C: float = 1.0,
    kernel: str = "rbf",
    gamma: Union[float, str] = "scale",
    seed: int = 0,
    **kwargs,
) -> Classifier:
    """Factory for the paper's "SVM classifier with RBF kernel".

    Returns a :class:`BinarySVM` wrapped in a one-vs-one reducer so callers
    need not care whether a dataset is binary or multiclass.
    """
    from .multiclass import OneVsOneClassifier

    def make_binary(pair_seed: int) -> BinarySVM:
        return BinarySVM(C=C, kernel=kernel, gamma=gamma, seed=pair_seed, **kwargs)

    return OneVsOneClassifier(make_binary, seed=seed)
