"""Deterministic message-passing simulation substrate for the SAP roles.

This package provides everything the multiparty protocol needs from a
"distributed system": a discrete-event kernel (:mod:`~repro.simnet.kernel`),
typed serialized messages (:mod:`~repro.simnet.messages`), encrypted
point-to-point channels with a latency model (:mod:`~repro.simnet.channel`,
:mod:`~repro.simnet.crypto`), node base classes (:mod:`~repro.simnet.node`),
and per-principal adversary views for auditing information flow
(:mod:`~repro.simnet.adversary`).
"""

from .adversary import (
    EndpointObservation,
    ObservationLedger,
    WireObservation,
    empirical_identifiability,
    posterior_over_sources,
)
from .channel import LatencyModel, Network
from .errors import (
    DuplicateAddressError,
    ProtocolViolationError,
    SchedulingError,
    SimulationError,
    TransportError,
    UnknownAddressError,
)
from .kernel import Event, Simulator
from .messages import Message, MessageKind, deserialize_payload, serialize_payload
from .node import Node
from .trace import message_flow_summary, render_trace

__all__ = [
    "Event",
    "Simulator",
    "Network",
    "LatencyModel",
    "Node",
    "Message",
    "MessageKind",
    "serialize_payload",
    "deserialize_payload",
    "ObservationLedger",
    "WireObservation",
    "EndpointObservation",
    "posterior_over_sources",
    "empirical_identifiability",
    "render_trace",
    "message_flow_summary",
    "SimulationError",
    "SchedulingError",
    "TransportError",
    "ProtocolViolationError",
    "UnknownAddressError",
    "DuplicateAddressError",
]
