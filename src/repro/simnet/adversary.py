"""Semi-honest adversary views and identifiability auditing.

The SAP privacy argument is an *information-flow* claim: after the random
exchange, the service provider cannot attribute a dataset to its owner with
probability better than ``1/(k-1)``.  To check such claims empirically the
network records what every principal could observe:

* :meth:`ObservationLedger.record_wire` — what a passive eavesdropper on the
  encrypted link sees: endpoints, timing, message kind, ciphertext size.
* :meth:`ObservationLedger.record_endpoint` — what the *recipient* sees: the
  decrypted message, i.e. its full semi-honest view contribution.

:func:`posterior_over_sources` and :func:`empirical_identifiability` turn
Monte-Carlo protocol runs into the posterior ``Pr(source | forwarder)`` the
paper's ``pi_i`` quantifies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .messages import Message, MessageKind

__all__ = [
    "WireObservation",
    "EndpointObservation",
    "ObservationLedger",
    "posterior_over_sources",
    "empirical_identifiability",
]


@dataclass(frozen=True)
class WireObservation:
    """What a passive network eavesdropper sees for one transmission."""

    time: float
    sender: str
    recipient: str
    kind: MessageKind
    nbytes: int


@dataclass(frozen=True)
class EndpointObservation:
    """A decrypted message as observed by its recipient."""

    time: float
    observer: str
    kind: MessageKind
    sender: str
    payload_keys: Tuple[str, ...]
    message: Message


@dataclass
class ObservationLedger:
    """Accumulates per-principal views over a protocol run."""

    wire: List[WireObservation] = field(default_factory=list)
    endpoint: List[EndpointObservation] = field(default_factory=list)

    def record_wire(
        self, time: float, sender: str, recipient: str, kind: MessageKind, nbytes: int
    ) -> None:
        """Record the eavesdropper view of one transmission."""
        self.wire.append(
            WireObservation(
                time=time, sender=sender, recipient=recipient, kind=kind, nbytes=nbytes
            )
        )

    def record_endpoint(self, time: float, observer: str, message: Message) -> None:
        """Record the recipient view of one delivered message."""
        self.endpoint.append(
            EndpointObservation(
                time=time,
                observer=observer,
                kind=message.kind,
                sender=message.sender,
                payload_keys=tuple(sorted(message.payload)),
                message=message,
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def view_of(self, principal: str) -> List[EndpointObservation]:
        """Every decrypted message ``principal`` received, in order."""
        return [obs for obs in self.endpoint if obs.observer == principal]

    def plaintexts_seen_by(self, principal: str, kind: MessageKind) -> List[Message]:
        """Messages of one kind in a principal's decrypted view."""
        return [obs.message for obs in self.view_of(principal) if obs.kind == kind]

    def wire_traffic(self, sender: str | None = None) -> List[WireObservation]:
        """Eavesdropper records, optionally filtered by sender."""
        if sender is None:
            return list(self.wire)
        return [obs for obs in self.wire if obs.sender == sender]

    def principals(self) -> Tuple[str, ...]:
        """All principals that received at least one message."""
        seen: Dict[str, None] = {}
        for obs in self.endpoint:
            seen.setdefault(obs.observer, None)
        return tuple(seen)


def posterior_over_sources(
    assignments: Iterable[Tuple[str, str]]
) -> Dict[str, Dict[str, float]]:
    """Empirical posterior ``Pr(source | forwarder)`` from Monte-Carlo runs.

    Parameters
    ----------
    assignments:
        ``(forwarder, true_source)`` pairs collected over many independent
        protocol executions.

    Returns
    -------
    dict
        ``posterior[forwarder][source]`` — the fraction of runs in which the
        dataset forwarded by ``forwarder`` originated at ``source``.
    """
    counts: Dict[str, Counter] = {}
    for forwarder, source in assignments:
        counts.setdefault(forwarder, Counter())[source] += 1
    posterior: Dict[str, Dict[str, float]] = {}
    for forwarder, counter in counts.items():
        total = sum(counter.values())
        posterior[forwarder] = {
            source: count / total for source, count in counter.items()
        }
    return posterior


def empirical_identifiability(
    assignments: Sequence[Tuple[str, str]]
) -> Dict[str, float]:
    """Worst-case attribution probability per *source*.

    For each data provider ``DP_i`` this is the adversary's best posterior
    probability of attributing some forwarded dataset to ``DP_i`` — the
    empirical counterpart of the paper's ``pi_i``.  Under a correct SAP run
    with ``k`` providers this converges to ``1/(k-1)``.
    """
    posterior = posterior_over_sources(assignments)
    sources = {source for _, source in assignments}
    result: Dict[str, float] = {}
    for source in sources:
        best = 0.0
        for per_forwarder in posterior.values():
            best = max(best, per_forwarder.get(source, 0.0))
        result[source] = best
    return result
