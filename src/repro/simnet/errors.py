"""Errors raised by the discrete-event simulation substrate.

The simulator is deliberately strict: configuration mistakes (unknown
addresses, duplicate node names, events scheduled in the past) raise early
instead of silently corrupting a protocol run, because protocol experiments
depend on every message being accounted for.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-substrate errors."""


class UnknownAddressError(SimulationError):
    """A message was sent to an address no node is registered under."""

    def __init__(self, address: str) -> None:
        super().__init__(f"no node registered at address {address!r}")
        self.address = address


class DuplicateAddressError(SimulationError):
    """Two nodes attempted to register the same address."""

    def __init__(self, address: str) -> None:
        super().__init__(f"a node is already registered at address {address!r}")
        self.address = address


class SchedulingError(SimulationError):
    """An event was scheduled with a negative delay or after shutdown."""


class TransportError(SimulationError):
    """A message could not be serialized, encrypted, or authenticated."""


class ProtocolViolationError(SimulationError):
    """A node received a message that its protocol state machine forbids."""
