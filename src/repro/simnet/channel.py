"""The simulated network: channels, latency/bandwidth model, encryption.

A :class:`Network` connects named :class:`~repro.simnet.node.Node` objects
over point-to-point channels.  Every transmission is:

1. serialized (:mod:`repro.simnet.messages`),
2. encrypted under the pairwise key of its endpoints
   (:mod:`repro.simnet.crypto`) — the paper assumes encrypted links,
3. charged a delivery delay ``latency + nbytes / bandwidth``,
4. recorded in the adversary ledgers (:mod:`repro.simnet.adversary`):
   the wire observer sees only ciphertext metadata, the recipient sees
   plaintext.

The default :class:`LatencyModel` draws per-message jitter from the
network's own generator, so runs remain reproducible under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from . import crypto
from .adversary import ObservationLedger
from .errors import DuplicateAddressError, TransportError, UnknownAddressError
from .kernel import Simulator
from .messages import Message, deserialize_payload, serialize_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .node import Node

__all__ = ["LatencyModel", "Network"]


@dataclass
class LatencyModel:
    """Delivery-delay model for a point-to-point transmission.

    ``delay = base_latency + nbytes / bandwidth + U[0, jitter)``

    Parameters
    ----------
    base_latency:
        Fixed propagation delay in seconds.
    bandwidth:
        Link throughput in bytes/second.
    jitter:
        Upper bound of the uniform random jitter term (seconds).
    """

    base_latency: float = 0.010
    bandwidth: float = 12_500_000.0  # 100 Mbit/s
    jitter: float = 0.002

    def delay(self, nbytes: int, rng: np.random.Generator) -> float:
        """Delivery delay for a message of ``nbytes`` serialized bytes."""
        jitter = rng.uniform(0.0, self.jitter) if self.jitter > 0 else 0.0
        return self.base_latency + nbytes / self.bandwidth + jitter


class Network:
    """A set of nodes plus the encrypted transport connecting them.

    Parameters
    ----------
    simulator:
        The event kernel driving delivery.  A fresh one is created when
        omitted.
    latency:
        Default latency model for all links; individual links can be
        overridden with :meth:`set_link_latency`.
    seed:
        Seed for the network's private generator (nonces, jitter).
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        drop_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must be a probability")
        self.simulator = simulator if simulator is not None else Simulator()
        self.default_latency = latency if latency is not None else LatencyModel()
        self.drop_rate = drop_rate
        self._link_latency: Dict[Tuple[str, str], LatencyModel] = {}
        self._blocked_links: set[Tuple[str, str]] = set()
        self._nodes: Dict[str, "Node"] = {}
        self._rng = np.random.default_rng(seed)
        self.ledger = ObservationLedger()
        self._messages_sent = 0
        self._bytes_sent = 0
        self._messages_dropped = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Attach a node; its :attr:`name` becomes its address."""
        if node.name in self._nodes:
            raise DuplicateAddressError(node.name)
        self._nodes[node.name] = node

    def node(self, name: str) -> "Node":
        """Look up a registered node by address."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownAddressError(name) from None

    @property
    def addresses(self) -> Tuple[str, ...]:
        """All registered addresses, in registration order."""
        return tuple(self._nodes)

    def set_link_latency(self, sender: str, recipient: str, model: LatencyModel) -> None:
        """Override the latency model for one directed link."""
        self._link_latency[(sender, recipient)] = model

    def block_link(self, sender: str, recipient: str) -> None:
        """Fault injection: silently drop everything on one directed link
        (models a partition or a crashed peer from the sender's view)."""
        self._blocked_links.add((sender, recipient))

    def unblock_link(self, sender: str, recipient: str) -> None:
        """Heal a previously blocked link."""
        self._blocked_links.discard((sender, recipient))

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        """Total messages accepted for transmission."""
        return self._messages_sent

    @property
    def bytes_sent(self) -> int:
        """Total serialized payload bytes accepted for transmission."""
        return self._bytes_sent

    @property
    def messages_dropped(self) -> int:
        """Transmissions lost to fault injection (drop rate / blocked links)."""
        return self._messages_dropped

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Encrypt, delay, and deliver ``message`` to its recipient.

        Raises
        ------
        UnknownAddressError
            If the recipient is not registered (checked at send time: the
            sender is simulated software that must know its peers).
        """
        if message.recipient not in self._nodes:
            raise UnknownAddressError(message.recipient)
        plaintext = serialize_payload(message.payload)
        key = crypto.derive_key(message.sender, message.recipient)
        ciphertext = crypto.encrypt(key, plaintext, self._rng)

        self._messages_sent += 1
        self._bytes_sent += len(plaintext)

        # A wire eavesdropper learns endpoints, timing, and size — not content.
        self.ledger.record_wire(
            time=self.simulator.now,
            sender=message.sender,
            recipient=message.recipient,
            kind=message.kind,
            nbytes=len(ciphertext),
        )

        # Fault injection: the transmission happened (the eavesdropper saw
        # it) but the recipient never gets it.
        if (message.sender, message.recipient) in self._blocked_links or (
            self.drop_rate > 0.0 and self._rng.random() < self.drop_rate
        ):
            self._messages_dropped += 1
            return

        model = self._link_latency.get(
            (message.sender, message.recipient), self.default_latency
        )
        delay = model.delay(len(plaintext), self._rng)

        def deliver() -> None:
            recovered = crypto.decrypt(key, ciphertext)
            payload = deserialize_payload(recovered)
            if payload.keys() != message.payload.keys():
                raise TransportError(
                    f"payload corrupted in transit for {message.describe()}"
                )
            delivered = Message(
                kind=message.kind,
                sender=message.sender,
                recipient=message.recipient,
                payload=payload,
                msg_id=message.msg_id,
            )
            self.ledger.record_endpoint(
                time=self.simulator.now,
                observer=message.recipient,
                message=delivered,
            )
            self._nodes[message.recipient].receive(delivered)

        self.simulator.schedule(delay, deliver)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Convenience pass-through to :meth:`Simulator.run`."""
        return self.simulator.run(until=until, max_events=max_events)
