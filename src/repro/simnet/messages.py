"""Typed message envelopes exchanged by the SAP roles.

Every protocol interaction is a :class:`Message` with a ``kind`` drawn from
:class:`MessageKind` and a ``payload`` dictionary.  Payloads may contain
numpy arrays; :func:`serialize_payload` / :func:`deserialize_payload` give a
compact self-describing byte encoding so messages can be encrypted on the
wire and so the channel can charge a realistic size to the bandwidth model.

The serializer intentionally supports only the value types the protocol
needs (``None``, bool, int, float, str, bytes, lists/tuples, dicts with
string keys, and numpy arrays) and rejects anything else loudly — an
unserializable payload is a protocol bug, not something to paper over with
pickle.
"""

from __future__ import annotations

import enum
import io
import struct
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from .errors import TransportError

__all__ = [
    "MessageKind",
    "Message",
    "serialize_payload",
    "deserialize_payload",
    "payload_nbytes",
]


class MessageKind(enum.Enum):
    """Every message type appearing in the Space Adaptation Protocol."""

    # session management
    SESSION_ANNOUNCE = "session_announce"
    SESSION_ACK = "session_ack"
    # target-space establishment (coordinator -> providers)
    TARGET_PARAMS = "target_params"
    # optional satisfaction-aware target selection (extension)
    TARGET_PROPOSALS = "target_proposals"
    TARGET_VOTE = "target_vote"
    # random-exchange phase (provider -> provider)
    EXCHANGE_ASSIGNMENT = "exchange_assignment"
    PERTURBED_DATASET = "perturbed_dataset"
    # submission phase (provider -> miner)
    FORWARDED_DATASET = "forwarded_dataset"
    # adaptor phase (provider -> coordinator -> miner)
    SPACE_ADAPTOR = "space_adaptor"
    ADAPTOR_SEQUENCE = "adaptor_sequence"
    # results (miner -> providers)
    MODEL_REPORT = "model_report"
    # model service: classify new records in the unified space
    CLASSIFY_REQUEST = "classify_request"
    CLASSIFY_RESPONSE = "classify_response"
    # sharded execution: per-window party batches routed to worker shards
    SHARD_BATCH = "shard_batch"
    SHARD_FORWARD = "shard_forward"
    SHARD_RESULT = "shard_result"
    # generic control
    ABORT = "abort"


@dataclass
class Message:
    """A protocol message between two named principals.

    Attributes
    ----------
    kind:
        The protocol step this message implements.
    sender / recipient:
        Addresses of the endpoints (node names).
    payload:
        Step-specific data; see :mod:`repro.parties` for the schema each
        role produces and expects.
    msg_id:
        Sequence number assigned by the sending node (unique per sender).
    """

    kind: MessageKind
    sender: str
    recipient: str
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = -1

    def describe(self) -> str:
        """One-line human-readable summary (used in traces and errors)."""
        return (
            f"{self.kind.value} #{self.msg_id} "
            f"{self.sender} -> {self.recipient} ({payload_nbytes(self.payload)} bytes)"
        )


# ----------------------------------------------------------------------
# payload serialization
# ----------------------------------------------------------------------
_TAG_NONE = b"N"
_TAG_BOOL = b"B"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"Y"
_TAG_LIST = b"L"
_TAG_DICT = b"D"
_TAG_ARRAY = b"A"


def _write_value(out: io.BytesIO, value: Any) -> None:
    if value is None:
        out.write(_TAG_NONE)
    elif isinstance(value, bool):  # must precede int: bool is an int subclass
        out.write(_TAG_BOOL)
        out.write(b"\x01" if value else b"\x00")
    elif isinstance(value, (int, np.integer)):
        out.write(_TAG_INT)
        out.write(struct.pack(">q", int(value)))
    elif isinstance(value, (float, np.floating)):
        out.write(_TAG_FLOAT)
        out.write(struct.pack(">d", float(value)))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.write(_TAG_STR)
        out.write(struct.pack(">I", len(encoded)))
        out.write(encoded)
    elif isinstance(value, bytes):
        out.write(_TAG_BYTES)
        out.write(struct.pack(">I", len(value)))
        out.write(value)
    elif isinstance(value, (list, tuple)):
        out.write(_TAG_LIST)
        out.write(struct.pack(">I", len(value)))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out.write(_TAG_DICT)
        out.write(struct.pack(">I", len(value)))
        for key in sorted(value):
            if not isinstance(key, str):
                raise TransportError(
                    f"payload dict keys must be str, got {type(key).__name__}"
                )
            _write_value(out, key)
            _write_value(out, value[key])
    elif isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        dtype_name = data.dtype.str.encode("ascii")
        out.write(_TAG_ARRAY)
        out.write(struct.pack(">I", len(dtype_name)))
        out.write(dtype_name)
        out.write(struct.pack(">I", data.ndim))
        for dim in data.shape:
            out.write(struct.pack(">q", dim))
        raw = data.tobytes()
        out.write(struct.pack(">Q", len(raw)))
        out.write(raw)
    else:
        raise TransportError(
            f"payload value of type {type(value).__name__} is not serializable"
        )


def _read_exact(buf: io.BytesIO, count: int) -> bytes:
    data = buf.read(count)
    if len(data) != count:
        raise TransportError("truncated payload")
    return data


def _read_value(buf: io.BytesIO) -> Any:
    tag = _read_exact(buf, 1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return _read_exact(buf, 1) == b"\x01"
    if tag == _TAG_INT:
        return struct.unpack(">q", _read_exact(buf, 8))[0]
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", _read_exact(buf, 8))[0]
    if tag == _TAG_STR:
        (length,) = struct.unpack(">I", _read_exact(buf, 4))
        return _read_exact(buf, length).decode("utf-8")
    if tag == _TAG_BYTES:
        (length,) = struct.unpack(">I", _read_exact(buf, 4))
        return _read_exact(buf, length)
    if tag == _TAG_LIST:
        (count,) = struct.unpack(">I", _read_exact(buf, 4))
        return [_read_value(buf) for _ in range(count)]
    if tag == _TAG_DICT:
        (count,) = struct.unpack(">I", _read_exact(buf, 4))
        result = {}
        for _ in range(count):
            key = _read_value(buf)
            result[key] = _read_value(buf)
        return result
    if tag == _TAG_ARRAY:
        (dtype_len,) = struct.unpack(">I", _read_exact(buf, 4))
        dtype = np.dtype(_read_exact(buf, dtype_len).decode("ascii"))
        (ndim,) = struct.unpack(">I", _read_exact(buf, 4))
        shape = tuple(
            struct.unpack(">q", _read_exact(buf, 8))[0] for _ in range(ndim)
        )
        (nbytes,) = struct.unpack(">Q", _read_exact(buf, 8))
        raw = _read_exact(buf, nbytes)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    raise TransportError(f"unknown payload tag {tag!r}")


def serialize_payload(payload: Dict[str, Any]) -> bytes:
    """Encode a payload dictionary to bytes (see module docstring)."""
    out = io.BytesIO()
    _write_value(out, payload)
    return out.getvalue()


def deserialize_payload(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`serialize_payload`."""
    buf = io.BytesIO(data)
    value = _read_value(buf)
    if buf.read(1):
        raise TransportError("trailing bytes after payload")
    if not isinstance(value, dict):
        raise TransportError("top-level payload must be a dict")
    return value


def payload_nbytes(payload: Dict[str, Any]) -> int:
    """Size of the serialized payload; used by the channel bandwidth model."""
    return len(serialize_payload(payload))
