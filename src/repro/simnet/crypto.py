"""Symmetric transport encryption for the simulated network.

The paper assumes "encryption is applied before data is transmitted on the
network" and a semi-honest adversary.  The simulator therefore ships a small
but *real* authenticated symmetric cipher so that a network eavesdropper's
view (recorded by :mod:`repro.simnet.adversary`) contains only ciphertext,
while endpoints holding the session key recover the plaintext.

The construction is a standard encrypt-then-MAC over a hash-based stream
cipher:

* keystream: ``SHA-256(key || nonce || counter)`` blocks, XORed with the
  plaintext (a CTR-mode construction; SHA-256 plays the role of the block
  function),
* authentication: HMAC-SHA-256 over ``nonce || ciphertext`` with an
  independently derived MAC key.

This is adequate for the *semi-honest modelling* purpose here (confidential
on the wire, tamper-evident, deterministic given an explicit nonce source).
It is not intended as production cryptography.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
import struct
from dataclasses import dataclass

import numpy as np

from .errors import TransportError

__all__ = ["SessionKey", "Ciphertext", "encrypt", "decrypt", "derive_key"]

_BLOCK = hashlib.sha256().digest_size
_NONCE_BYTES = 16


@dataclass(frozen=True)
class SessionKey:
    """A pairwise symmetric key with derived encryption and MAC subkeys."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) < 16:
            raise TransportError("session keys must be at least 128 bits")

    @functools.cached_property
    def enc_key(self) -> bytes:
        """Subkey used for the keystream (derived once per key object)."""
        return hashlib.sha256(b"enc|" + self.raw).digest()

    @functools.cached_property
    def mac_key(self) -> bytes:
        """Subkey used for the HMAC tag (derived once per key object)."""
        return hashlib.sha256(b"mac|" + self.raw).digest()


@dataclass(frozen=True)
class Ciphertext:
    """Wire format: nonce, ciphertext body, authentication tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def __len__(self) -> int:
        return len(self.nonce) + len(self.body) + len(self.tag)


@functools.lru_cache(maxsize=256)
def derive_key(*parts: str) -> SessionKey:
    """Derive a deterministic pairwise key from principal identifiers.

    In the semi-honest deployment the providers and the service provider are
    assumed to have provisioned pairwise keys out of band; deriving them from
    the (sorted) endpoint names keeps simulation runs reproducible without
    modelling a key-exchange protocol the paper does not discuss.  Derivation
    is memoized: the channel derives on every transmission, and long
    streaming sessions reuse the same few pairwise keys millions of times.
    """
    material = "|".join(sorted(parts)).encode("utf-8")
    return SessionKey(hashlib.sha256(b"sap-pairwise|" + material).digest())


def _keystream(key: SessionKey, nonce: bytes, length: int) -> bytes:
    enc_key = key.enc_key  # hoisted: one subkey derivation per message
    prefix = enc_key + nonce
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(prefix + struct.pack(">Q", counter)).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Vectorized with numpy: the sharded data plane pushes every per-window
    record batch through the cipher, and a per-byte Python loop was the
    transport's dominant cost for payloads beyond a few KiB.  The output
    is byte-identical to the scalar loop it replaces.
    """
    if not data:
        return b""
    return (
        np.frombuffer(data, dtype=np.uint8)
        ^ np.frombuffer(stream, dtype=np.uint8)
    ).tobytes()


def encrypt(key: SessionKey, plaintext: bytes, rng: np.random.Generator) -> Ciphertext:
    """Encrypt-then-MAC ``plaintext`` under ``key``.

    The nonce is drawn from the caller's generator so protocol runs stay
    deterministic under a fixed seed while distinct messages still get
    distinct nonces with overwhelming probability.
    """
    nonce = rng.bytes(_NONCE_BYTES)
    stream = _keystream(key, nonce, len(plaintext))
    body = _xor(plaintext, stream)
    tag = hmac.new(key.mac_key, nonce + body, hashlib.sha256).digest()
    return Ciphertext(nonce=nonce, body=body, tag=tag)


def decrypt(key: SessionKey, ciphertext: Ciphertext) -> bytes:
    """Verify the tag and recover the plaintext.

    Raises
    ------
    TransportError
        If the authentication tag does not verify (tampering or wrong key).
    """
    expected = hmac.new(
        key.mac_key, ciphertext.nonce + ciphertext.body, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise TransportError("message authentication failed")
    stream = _keystream(key, ciphertext.nonce, len(ciphertext.body))
    return _xor(ciphertext.body, stream)
