"""Deterministic discrete-event simulation kernel.

The kernel is a classic event-queue simulator: callbacks are scheduled at
virtual timestamps and executed in timestamp order.  Ties are broken by a
monotonically increasing sequence number so that runs are bit-for-bit
reproducible regardless of heap internals.

The kernel knows nothing about networking or protocols; channels and nodes
(see :mod:`repro.simnet.channel` and :mod:`repro.simnet.node`) build on it.

Example
-------
>>> sim = Simulator()
>>> seen = []
>>> sim.schedule(2.0, lambda: seen.append("late"))
>>> sim.schedule(1.0, lambda: seen.append("early"))
>>> sim.run()
>>> seen
['early', 'late']
>>> sim.now
2.0
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .errors import SchedulingError

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is assigned by the simulator so
    two events at the same virtual time run in scheduling order.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it comes due."""
        self.cancelled = True


class Simulator:
    """Single-threaded deterministic event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).  Defaults to ``0.0``.

    Notes
    -----
    The simulator never consults wall-clock time or global randomness, so a
    protocol run driven by seeded generators replays identically.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed since construction."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled before it fires.

        Raises
        ------
        SchedulingError
            If ``delay`` is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        event = Event(time=self._now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (clock is already at {self._now})"
            )
        return self.schedule(time - self._now, callback)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            ``until`` and fast-forward the clock to ``until``.
        max_events:
            If given, stop after that many callbacks (a safety valve for
            misbehaving protocols in tests).

        Returns
        -------
        int
            Number of callbacks executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                if self.step():
                    executed += 1
        finally:
            self._running = False
        if until is not None and not self._queue:
            self._now = max(self._now, until)
        return executed

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping it, dropping cancelled ones."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
