"""Protocol trace rendering: turn an observation ledger into a readable
message-sequence listing.

The ledger (:mod:`repro.simnet.adversary`) records every delivered message;
this module renders those records as a time-ordered, aligned trace —
useful in examples, debugging, and documentation, and a cheap way to
eyeball that a protocol run had the expected shape.

Example output::

    t=  10.5ms  coordinator  -> provider-0   target_params
    t=  11.2ms  coordinator  -> provider-1   target_params
    t=  52.7ms  provider-1   -> miner        forwarded_dataset  (56_412 B)
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

from .adversary import ObservationLedger
from .messages import MessageKind, payload_nbytes

__all__ = ["render_trace", "message_flow_summary"]


def render_trace(
    ledger: ObservationLedger,
    kinds: Optional[Sequence[MessageKind]] = None,
    max_messages: Optional[int] = None,
    show_sizes: bool = True,
) -> str:
    """Render delivered messages as one aligned line each, in time order.

    Parameters
    ----------
    kinds:
        Restrict to these message kinds (default: everything).
    max_messages:
        Truncate long traces (a truncation marker is appended).
    show_sizes:
        Append serialized payload sizes.
    """
    wanted = set(kinds) if kinds is not None else None
    records = [
        obs
        for obs in sorted(ledger.endpoint, key=lambda o: (o.time, o.observer))
        if wanted is None or obs.kind in wanted
    ]
    truncated = False
    if max_messages is not None and len(records) > max_messages:
        records = records[:max_messages]
        truncated = True
    if not records:
        return "(no messages)"

    sender_width = max(len(obs.sender) for obs in records)
    observer_width = max(len(obs.observer) for obs in records)
    lines: List[str] = []
    for obs in records:
        line = (
            f"t={obs.time * 1000:>8.1f}ms  "
            f"{obs.sender:<{sender_width}} -> {obs.observer:<{observer_width}}  "
            f"{obs.kind.value}"
        )
        if show_sizes:
            line += f"  ({payload_nbytes(obs.message.payload):_} B)"
        lines.append(line)
    if truncated:
        lines.append(f"... ({len(ledger.endpoint)} messages total)")
    return "\n".join(lines)


def message_flow_summary(ledger: ObservationLedger) -> str:
    """Counts per (kind, sender-role) — a compact protocol fingerprint.

    Collapses concrete provider names (``provider-3``) to the role
    (``provider``) so runs with different k produce comparable summaries.
    """

    def role(name: str) -> str:
        if name.startswith("provider"):
            return "provider"
        return name

    counter: Counter = Counter()
    for obs in ledger.endpoint:
        counter[(obs.kind.value, role(obs.sender), role(obs.observer))] += 1
    if not counter:
        return "(no messages)"
    width = max(len(kind) for kind, _, _ in counter)
    lines = []
    for (kind, sender, observer), count in sorted(counter.items()):
        lines.append(f"{kind:<{width}}  {sender:>11} -> {observer:<11}  x{count}")
    return "\n".join(lines)
