"""Protocol trace rendering: turn an observation ledger into a readable
message-sequence listing.

The ledger (:mod:`repro.simnet.adversary`) records every delivered message;
this module renders those records as a time-ordered, aligned trace —
useful in examples, debugging, and documentation, and a cheap way to
eyeball that a protocol run had the expected shape.

Example output::

    t=  10.5ms  coordinator  -> provider-0   target_params
    t=  11.2ms  coordinator  -> provider-1   target_params
    t=  52.7ms  provider-1   -> miner        forwarded_dataset  (56_412 B)
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

from .adversary import ObservationLedger
from .messages import MessageKind, payload_nbytes

__all__ = ["render_trace", "message_flow_summary", "SHARD_FLOW_KINDS"]


def render_trace(
    ledger: ObservationLedger,
    kinds: Optional[Sequence[MessageKind]] = None,
    max_messages: Optional[int] = None,
    show_sizes: bool = True,
) -> str:
    """Render delivered messages as one aligned line each, in time order.

    Parameters
    ----------
    kinds:
        Restrict to these message kinds (default: everything).
    max_messages:
        Truncate long traces (a truncation marker is appended).
    show_sizes:
        Append serialized payload sizes.
    """
    wanted = set(kinds) if kinds is not None else None
    records = [
        obs
        for obs in sorted(ledger.endpoint, key=lambda o: (o.time, o.observer))
        if wanted is None or obs.kind in wanted
    ]
    truncated = False
    if max_messages is not None and len(records) > max_messages:
        records = records[:max_messages]
        truncated = True
    if not records:
        return "(no messages)"

    sender_width = max(len(obs.sender) for obs in records)
    observer_width = max(len(obs.observer) for obs in records)
    lines: List[str] = []
    for obs in records:
        line = (
            f"t={obs.time * 1000:>8.1f}ms  "
            f"{obs.sender:<{sender_width}} -> {obs.observer:<{observer_width}}  "
            f"{obs.kind.value}"
        )
        if show_sizes:
            line += f"  ({payload_nbytes(obs.message.payload):_} B)"
        lines.append(line)
    if truncated:
        lines.append(f"... ({len(ledger.endpoint)} messages total)")
    return "\n".join(lines)


#: the data-plane message kinds of :mod:`repro.sharding.engine`, broken
#: out into their own summary section rather than lumped with protocol
#: control traffic
SHARD_FLOW_KINDS = frozenset(
    kind.value
    for kind in (
        MessageKind.SHARD_BATCH,
        MessageKind.SHARD_FORWARD,
        MessageKind.SHARD_RESULT,
    )
)


def message_flow_summary(ledger: ObservationLedger) -> str:
    """Counts and byte totals per (kind, roles) — a protocol fingerprint.

    Collapses concrete node names (``provider-3``, ``shard-2``) to their
    roles (``provider``, ``shard``) so runs with different k or shard
    counts produce comparable summaries.  Shard data-plane kinds
    (:data:`SHARD_FLOW_KINDS`) get their own section when present, so the
    sharded record traffic never masquerades as protocol traffic.
    """

    def role(name: str) -> str:
        if name.startswith("provider"):
            return "provider"
        if name.startswith("shard-"):
            return "shard"
        return name

    counts: Counter = Counter()
    nbytes: Counter = Counter()
    for obs in ledger.endpoint:
        key = (obs.kind.value, role(obs.sender), role(obs.observer))
        counts[key] += 1
        nbytes[key] += payload_nbytes(obs.message.payload)
    if not counts:
        return "(no messages)"
    width = max(len(kind) for kind, _, _ in counts)

    def lines_for(keys: Iterable) -> List[str]:
        return [
            f"{kind:<{width}}  {sender:>11} -> {observer:<11}  "
            f"x{counts[(kind, sender, observer)]}  "
            f"{nbytes[(kind, sender, observer)]:_} B"
            for kind, sender, observer in sorted(keys)
        ]

    protocol = [key for key in counts if key[0] not in SHARD_FLOW_KINDS]
    shard = [key for key in counts if key[0] in SHARD_FLOW_KINDS]
    if not shard:
        return "\n".join(lines_for(protocol))
    sections: List[str] = []
    if protocol:
        sections.append("protocol control plane:")
        sections.extend(lines_for(protocol))
    sections.append("shard data plane:")
    sections.extend(lines_for(shard))
    return "\n".join(sections)
