"""Node base class: an addressable protocol participant.

A :class:`Node` owns a private seeded generator, an outbound message
counter, and a dispatch table mapping :class:`MessageKind` values to
handler methods named ``on_<kind>`` (for example ``on_perturbed_dataset``).
Subclasses in :mod:`repro.parties` implement the SAP roles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .channel import Network
from .errors import ProtocolViolationError
from .messages import Message, MessageKind

__all__ = ["Node"]


class Node:
    """An addressable participant attached to a :class:`Network`.

    Parameters
    ----------
    name:
        Unique address on the network.
    network:
        The network to register with.
    seed:
        Seed for this node's private generator.  Every role derives all of
        its randomness (perturbation parameters, permutations, nonces) from
        this generator so a run is reproducible end to end.
    """

    def __init__(self, name: str, network: Network, seed: int = 0) -> None:
        self.name = name
        self.network = network
        self.rng = np.random.default_rng(seed)
        self.inbox: List[Message] = []
        self._next_msg_id = 0
        network.register(self)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        kind: MessageKind,
        recipient: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Message:
        """Build a message, stamp it with a per-sender id, and transmit it."""
        message = Message(
            kind=kind,
            sender=self.name,
            recipient=recipient,
            payload=dict(payload or {}),
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        self.network.send(message)
        return message

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> None:
        """Entry point called by the network on delivery.

        Appends to :attr:`inbox` then dispatches to ``on_<kind>`` if the
        subclass defines it; otherwise raises — silently dropped protocol
        messages hide bugs.
        """
        self.inbox.append(message)
        handler = self._handler_for(message.kind)
        if handler is None:
            raise ProtocolViolationError(
                f"{type(self).__name__} {self.name!r} has no handler for "
                f"{message.describe()}"
            )
        handler(message)

    def _handler_for(self, kind: MessageKind) -> Optional[Callable[[Message], None]]:
        return getattr(self, f"on_{kind.value}", None)

    # ------------------------------------------------------------------
    # conveniences for subclasses and tests
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.network.simulator.now

    def received(self, kind: MessageKind) -> List[Message]:
        """All inbox messages of one kind, in arrival order."""
        return [msg for msg in self.inbox if msg.kind == kind]

    def expect_exactly(self, kind: MessageKind, count: int) -> List[Message]:
        """Assert the inbox holds exactly ``count`` messages of ``kind``."""
        messages = self.received(kind)
        if len(messages) != count:
            raise ProtocolViolationError(
                f"{self.name!r} expected {count} {kind.value} message(s), "
                f"has {len(messages)}"
            )
        return messages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} inbox={len(self.inbox)}>"
