"""Metrics registry: determinism, export formats, and type safety."""

import json
import pickle

import pytest

from repro.obs import MetricsRegistry, global_registry
from repro.obs.metrics import DEFAULT_BUCKETS


def _populate(registry):
    """A fixed update sequence — two identical runs must snapshot equal."""
    registry.counter("rounds_total", "Rounds merged.").inc()
    registry.counter("rounds_total").inc(2)
    registry.gauge("inflight", "Sessions in flight.").set(3)
    registry.gauge("inflight").dec()
    hist = registry.histogram("latency_seconds", "Stage latency.")
    for value in (0.0002, 0.004, 0.004, 0.3, 42.0):
        hist.observe(value)
    registry.counter("events_total", "Events by reason.", reason="drift").inc()
    registry.counter("events_total", reason="trust_change").inc(4)


def test_snapshot_is_deterministic_across_identical_runs():
    first, second = MetricsRegistry(), MetricsRegistry()
    _populate(first)
    _populate(second)
    assert first.snapshot() == second.snapshot()
    assert first.to_json() == second.to_json()
    assert first.render_prometheus() == second.render_prometheus()


def test_snapshot_is_plain_and_picklable():
    registry = MetricsRegistry()
    _populate(registry)
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert pickle.loads(pickle.dumps(snap)) == snap


def test_counter_families_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("hits_total", "Hits.", route="a")
    b = registry.counter("hits_total", route="b")
    assert a is registry.counter("hits_total", route="a")  # get-or-create
    assert a is not b
    a.inc(3)
    b.inc()
    values = registry.snapshot()["hits_total"]["values"]
    assert values == {'{route="a"}': 3, '{route="b"}': 1}


def test_counter_rejects_decrease():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="cannot decrease"):
        registry.counter("n_total").inc(-1)


def test_type_conflict_is_a_friendly_error():
    registry = MetricsRegistry()
    registry.counter("n_total")
    with pytest.raises(ValueError, match="is a counter, not a gauge"):
        registry.gauge("n_total")


def test_histogram_buckets_are_cumulative_in_snapshot():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    value = registry.snapshot()["lat"]["values"][""]
    assert value["buckets"] == {"0.1": 1, "1": 3, "+Inf": 4}
    assert value["count"] == 4
    assert value["sum"] == pytest.approx(6.05)


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="sorted"):
        registry.histogram("lat", buckets=(1.0, 0.1))


def test_render_prometheus_exposition_shape():
    registry = MetricsRegistry()
    _populate(registry)
    text = registry.render_prometheus()
    assert "# HELP rounds_total Rounds merged.\n# TYPE rounds_total counter" in text
    assert "rounds_total 3" in text
    assert "inflight 2" in text
    assert 'events_total{reason="drift"} 1' in text
    assert 'latency_seconds_bucket{le="+Inf"} 5' in text
    assert "latency_seconds_count 5" in text
    assert text.endswith("\n")


def test_write_json_round_trips(tmp_path):
    registry = MetricsRegistry()
    _populate(registry)
    path = tmp_path / "metrics.json"
    registry.write_json(str(path))
    assert json.loads(path.read_text()) == registry.snapshot()


def test_collectors_run_at_snapshot_time():
    registry = MetricsRegistry()
    holder = {"windows": 0}
    registry.register_collector(
        lambda reg: reg.gauge("windows").set(holder["windows"])
    )
    holder["windows"] = 7
    assert registry.snapshot()["windows"]["values"][""] == 7
    holder["windows"] = 9  # re-read on every export, not cached
    assert registry.snapshot()["windows"]["values"][""] == 9


def test_default_buckets_span_useful_latencies():
    assert DEFAULT_BUCKETS[0] == pytest.approx(0.0001)
    assert DEFAULT_BUCKETS[-1] == pytest.approx(10.0)
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_global_registry_is_a_singleton():
    assert global_registry() is global_registry()
    assert isinstance(global_registry(), MetricsRegistry)


def test_histogram_quantile_interpolates_within_buckets():
    from repro.obs.metrics import bucket_quantile

    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
        hist.observe(value)
    # 8 observations: 2 in (0,1], 2 in (1,2], 4 in (2,4].
    assert hist.quantile(0.25) == pytest.approx(1.0)
    assert hist.quantile(0.5) == pytest.approx(2.0)
    assert hist.quantile(1.0) == pytest.approx(4.0)
    # Rank 6 of 8 lands halfway through the (2, 4] bucket.
    assert hist.quantile(0.75) == pytest.approx(3.0)
    assert bucket_quantile((1.0, 2.0, 4.0), [2, 2, 4, 0], 0.75) == pytest.approx(3.0)


def test_histogram_quantile_edge_cases():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1.0, 2.0))
    assert hist.quantile(0.95) == 0.0  # empty histogram
    hist.observe(100.0)  # lands in +Inf: clamp to the last finite bound
    assert hist.quantile(0.95) == pytest.approx(2.0)
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        hist.quantile(95)


def test_snapshot_quantile_reads_persisted_snapshots(tmp_path):
    from repro.obs.metrics import snapshot_quantile

    registry = MetricsRegistry()
    hist = registry.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.005, 0.005, 0.05):
        hist.observe(value)
    path = tmp_path / "metrics.json"
    registry.write_json(str(path))
    value = json.loads(path.read_text())["latency_seconds"]["values"][""]
    # The persisted cumulative buckets reproduce the live estimate.
    for q in (0.25, 0.5, 0.75, 0.95):
        assert snapshot_quantile(value, q) == pytest.approx(hist.quantile(q))
    assert snapshot_quantile({"buckets": {}, "count": 0}, 0.95) == 0.0
