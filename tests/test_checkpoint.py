"""Durable sessions: kill/restore must never change a single bit.

The contract under test: a session killed at *any* round boundary and
resumed from its checkpoint reproduces the uninterrupted run's
fingerprint exactly, across backends, shard counts, plans,
skew/late-policy settings, and mid-stream trust re-negotiations.  The
file format must also refuse — with a distinct, friendly error — every
damage mode: truncation, foreign bytes, schema mismatch, and bit rot.
"""

import os
import struct

import numpy as np
import pytest

from repro.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    Checkpointer,
    SessionEvicted,
    decode,
    encode,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve import MiningService, SessionSpec
from repro.streaming import (
    StreamConfig,
    TrustChange,
    make_stream,
    run_stream_session,
)


def _fingerprint(result):
    """Everything deterministic a stream result reports."""
    return {
        "records": result.records_processed,
        "windows": [
            (w.index, w.revision, w.n_records, w.accuracy_perturbed,
             w.accuracy_baseline, w.drift_statistic, w.readapted)
            for w in result.windows
        ],
        "events": [
            (e.window, e.reason, e.statistic, e.messages, e.bytes,
             e.virtual_duration, e.privacy_guarantee)
            for e in result.events
        ],
        "accuracy": (result.accuracy_perturbed, result.accuracy_baseline),
        "traffic": (result.messages_sent, result.bytes_sent,
                    result.data_messages_sent, result.data_bytes_sent),
        "provider_records": result.provider_records,
        "ingest": None if result.ingest is None else result.ingest.to_dict(),
    }


def _run(source_seed=3, checkpointer=None, resume_from=None, **knobs):
    source = make_stream(
        "iris", kind=knobs.pop("stream", "abrupt"), n_records=6 * 32,
        seed=source_seed,
    )
    config = StreamConfig(
        k=3, window_size=32, compute_privacy=False, seed=7, **knobs
    )
    return run_stream_session(
        source, config, checkpointer=checkpointer, resume_from=resume_from
    )


def _kill_and_resume(directory, stop_after=3, **knobs):
    """Evict at a round boundary, then restore from the written file."""
    checkpointer = Checkpointer(directory=str(directory), stop_after=stop_after)
    with pytest.raises(SessionEvicted) as excinfo:
        _run(checkpointer=checkpointer, **knobs)
    return _run(resume_from=excinfo.value.path, **knobs)


# ----------------------------------------------------------------------
# the bit-identity property, swept
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread"])
@pytest.mark.parametrize("shards", [1, 4])
def test_restore_bit_identical_across_backends_and_shards(
    tmp_path, backend, shards
):
    knobs = dict(shards=shards, shard_backend=backend)
    unbroken = _fingerprint(_run(**knobs))
    resumed = _kill_and_resume(tmp_path, **knobs)
    assert _fingerprint(resumed) == unbroken


@pytest.mark.parametrize("stop_after", [1, 2, 4])
def test_restore_bit_identical_at_any_kill_round(tmp_path, stop_after):
    knobs = dict(shards=2, shard_backend="thread")
    unbroken = _fingerprint(_run(**knobs))
    resumed = _kill_and_resume(tmp_path, stop_after=stop_after, **knobs)
    assert _fingerprint(resumed) == unbroken


@pytest.mark.parametrize("plan", ["hash", "party"])
def test_restore_bit_identical_across_plans(tmp_path, plan):
    knobs = dict(shards=4, shard_backend="thread", shard_plan=plan)
    unbroken = _fingerprint(_run(**knobs))
    resumed = _kill_and_resume(tmp_path, **knobs)
    assert _fingerprint(resumed) == unbroken


@pytest.mark.parametrize("late_policy", ["drop", "readmit", "upsert"])
def test_restore_bit_identical_under_skew(tmp_path, late_policy):
    """Out-of-order arrivals: gates, pending buffers, and watermarks all
    cross the checkpoint and must land back exactly."""
    knobs = dict(
        shards=4, shard_backend="thread", skew=8, watermark_delay=1,
        late_policy=late_policy,
    )
    unbroken = _run(**knobs)
    assert unbroken.ingest.late > 0  # the sweep actually exercised lateness
    resumed = _kill_and_resume(tmp_path, **knobs)
    assert _fingerprint(resumed) == _fingerprint(unbroken)


def test_restore_bit_identical_across_renegotiations(tmp_path):
    """Kill between two trust changes: epoch state, adaptor cache, and the
    remaining re-negotiation schedule must all survive the restore."""
    changes = (TrustChange(window=1, party=0, trust=0.5),
               TrustChange(window=3, party=1, trust=0.25))
    knobs = dict(
        stream="gradual", shards=2, shard_backend="thread",
        trust_changes=changes, readapt_cooldown=1,
    )
    unbroken = _run(**knobs)
    assert len(unbroken.events) >= 3  # initial + both trust renegotiations
    resumed = _kill_and_resume(tmp_path, stop_after=2, **knobs)
    assert _fingerprint(resumed) == _fingerprint(unbroken)


def test_periodic_checkpointing_does_not_perturb_result(tmp_path):
    """Saving every boundary (without ever evicting) must be invisible:
    the drain it forces changes execution overlap, never merge order."""
    knobs = dict(shards=2, shard_backend="thread")
    unbroken = _fingerprint(_run(**knobs))
    checkpointer = Checkpointer(directory=str(tmp_path), every=1)
    checked = _run(checkpointer=checkpointer, **knobs)
    assert _fingerprint(checked) == unbroken
    assert len(checkpointer.saved_paths) >= 2


# ----------------------------------------------------------------------
# resume refuses foreign workloads
# ----------------------------------------------------------------------
def test_resume_refuses_different_config(tmp_path):
    checkpointer = Checkpointer(directory=str(tmp_path), stop_after=2)
    with pytest.raises(SessionEvicted) as excinfo:
        _run(checkpointer=checkpointer, shards=2)
    with pytest.raises(CheckpointError, match="different configuration"):
        _run(resume_from=excinfo.value.path, shards=4)


def test_resume_refuses_different_source(tmp_path):
    checkpointer = Checkpointer(directory=str(tmp_path), stop_after=2)
    with pytest.raises(SessionEvicted) as excinfo:
        _run(checkpointer=checkpointer, shards=2)
    with pytest.raises(CheckpointError, match="different stream source"):
        _run(resume_from=excinfo.value.path, shards=2, source_seed=4)


# ----------------------------------------------------------------------
# file format: every damage mode is a distinct, friendly refusal
# ----------------------------------------------------------------------
def _valid_file(tmp_path):
    path = str(tmp_path / "valid.ckpt")
    save_checkpoint(path, {"state": {"a": 1}, "progress": {"windows": 2}})
    return path


def test_load_round_trips_fingerprint(tmp_path):
    path = _valid_file(tmp_path)
    first = load_checkpoint(path)
    second = load_checkpoint(path)
    assert first.schema_version == SCHEMA_VERSION
    assert first.fingerprint == second.fingerprint
    assert first.payload == second.payload


def test_load_rejects_truncated_header(tmp_path):
    path = str(tmp_path / "stub.ckpt")
    with open(path, "wb") as handle:
        handle.write(b"RP")
    with pytest.raises(CheckpointError, match="truncated"):
        load_checkpoint(path)


def test_load_rejects_foreign_magic(tmp_path):
    path = _valid_file(tmp_path)
    raw = bytearray(open(path, "rb").read())
    raw[:4] = b"ELF\x7f"
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load_checkpoint(path)


def test_load_rejects_schema_version_mismatch(tmp_path):
    path = _valid_file(tmp_path)
    raw = bytearray(open(path, "rb").read())
    raw[4:6] = struct.pack(">H", SCHEMA_VERSION + 1)
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointError, match="schema version"):
        load_checkpoint(path)


def test_load_rejects_truncated_payload(tmp_path):
    path = _valid_file(tmp_path)
    raw = open(path, "rb").read()
    open(path, "wb").write(raw[:-3])
    with pytest.raises(CheckpointError, match="truncated"):
        load_checkpoint(path)


def test_load_rejects_payload_bit_rot(tmp_path):
    path = _valid_file(tmp_path)
    raw = bytearray(open(path, "rb").read())
    raw[-1] ^= 0xFF
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointError, match="digest mismatch"):
        load_checkpoint(path)


def test_load_rejects_stateless_payload(tmp_path):
    path = str(tmp_path / "stateless.ckpt")
    save_checkpoint(path, {"progress": {"windows": 0}})
    with pytest.raises(CheckpointError, match="session state"):
        load_checkpoint(path)


def test_checkpointer_rejects_bad_intervals(tmp_path):
    with pytest.raises(CheckpointError, match="positive"):
        Checkpointer(directory=str(tmp_path), every=0)
    with pytest.raises(CheckpointError, match="positive"):
        Checkpointer(directory=str(tmp_path), stop_after=-1)


# ----------------------------------------------------------------------
# codec: the payload layer round-trips every type it claims
# ----------------------------------------------------------------------
def test_codec_round_trips_scalars_and_containers():
    payload = {
        "none": None,
        "flags": (True, False),
        "small": -42,
        "huge": -(1 << 130),  # PCG64 state words exceed 64 bits
        "float": 1.5,
        "text": "café",
        "bytes": b"\x00\xff\x7f",
        "list": [1, "two", 3.0, [None]],
        "nested": {"k": ({"deep": b"x"},)},
    }
    out = decode(encode(payload))
    assert out == payload
    assert isinstance(out["flags"], tuple)
    assert isinstance(out["list"], list)


def test_codec_round_trips_arrays_dtype_exact():
    rng = np.random.default_rng(0)
    arrays = {
        "f64": rng.normal(size=(3, 4)),
        "i64": rng.integers(-100, 100, size=7),
        "bool": rng.normal(size=5) > 0,
        "empty": np.empty((0, 13)),
        "int_scalar": np.int64(-7),  # reservoir labels are np.int64
        "float_scalar": np.float64(2.5),
    }
    out = decode(encode(arrays))
    for key in ("f64", "i64", "bool", "empty"):
        assert out[key].dtype == arrays[key].dtype
        assert out[key].shape == arrays[key].shape
        assert np.array_equal(out[key], arrays[key])
    assert out["int_scalar"] == arrays["int_scalar"]
    assert out["int_scalar"].dtype == np.int64
    # np.float64 subclasses float, so it rides the float tag: the decoded
    # value is bit-identical even though the wrapper type is not preserved.
    assert out["float_scalar"] == arrays["float_scalar"]


def test_codec_decoded_arrays_are_writable_copies():
    original = np.arange(6.0).reshape(2, 3)
    out = decode(encode({"a": original}))["a"]
    out[0, 0] = 99.0  # a read-only view would raise here
    assert original[0, 0] == 0.0


# ----------------------------------------------------------------------
# serving engine: evict frees the slot, resume re-enters admission
# ----------------------------------------------------------------------
def _service_fingerprint(result):
    return (result.deviation_series(), result.messages_sent)


def test_service_evict_and_resume_bit_identical(tmp_path):
    spec = SessionSpec(
        kind="stream", dataset="wine", k=3, windows=40, window_size=32,
        compute_privacy=False, seed=5,
    )
    with MiningService(max_inflight=2) as service:
        unbroken = service.run([spec])[0]

    with MiningService(
        max_inflight=2, checkpoint_dir=str(tmp_path)
    ) as service:
        handle = service.submit(spec, checkpoint_every=2)
        path = service.evict(handle.session_id, timeout=60)
        assert path is not None
        assert handle.poll() == "evicted"
        with pytest.raises(SessionEvicted):
            handle.result()
        resumed = service.resume(path).result(timeout=120)
        stats = service.stats()
    assert stats.evicted == 1
    assert "evicted" in stats.summary()
    assert _service_fingerprint(resumed) == _service_fingerprint(unbroken)


def test_service_refuses_batch_checkpointing(tmp_path):
    spec = SessionSpec(kind="batch", dataset="wine", k=3, seed=0)
    with MiningService(checkpoint_dir=str(tmp_path)) as service:
        with pytest.raises(CheckpointError, match="streaming-only"):
            service.submit(spec, checkpoint_every=1)


def test_service_refuses_checkpoint_every_without_dir():
    spec = SessionSpec(
        kind="stream", dataset="wine", k=3, windows=2, window_size=32,
        compute_privacy=False, seed=0,
    )
    with MiningService() as service:
        with pytest.raises(CheckpointError, match="checkpoint_dir"):
            service.submit(spec, checkpoint_every=1)


# ----------------------------------------------------------------------
# retention: keep only the newest K checkpoints per session
# ----------------------------------------------------------------------
def test_checkpointer_retain_keeps_only_newest_files(tmp_path):
    from repro.checkpoint import list_checkpoints

    checkpointer = Checkpointer(directory=str(tmp_path), every=1, retain=2)
    result = _run(checkpointer=checkpointer)
    assert result.records_processed == 6 * 32
    kept = list_checkpoints(str(tmp_path))
    assert len(kept) == 2
    assert kept == sorted(checkpointer.saved_paths)
    assert kept[-1].endswith("-w00005.ckpt")  # last boundary saved mid-run
    # The survivors are real checkpoints, not husks.
    for path in kept:
        assert load_checkpoint(path).payload["progress"]["windows"] > 0


def test_checkpointer_retain_validation(tmp_path):
    with pytest.raises(CheckpointError, match="retain"):
        Checkpointer(directory=str(tmp_path), every=1, retain=0)


def test_prune_checkpoints_groups_by_session_label(tmp_path):
    from repro.checkpoint import list_checkpoints, prune_checkpoints

    for label, windows in (("alpha", (2, 4, 6)), ("beta", (3,))):
        checkpointer = Checkpointer(directory=str(tmp_path), label=label)
        for done in windows:
            checkpointer.save({"progress": {"windows": done}})
    removed = prune_checkpoints(str(tmp_path), retain=1)
    # alpha loses its two oldest; beta's only file survives untouched.
    assert [os.path.basename(p) for p in removed] == [
        "alpha-w00002.ckpt", "alpha-w00004.ckpt"
    ]
    survivors = [
        os.path.basename(p) for p in list_checkpoints(str(tmp_path))
    ]
    assert survivors == ["alpha-w00006.ckpt", "beta-w00003.ckpt"]
    # Label-scoped listing and pruning see only their own session.
    assert [
        os.path.basename(p)
        for p in list_checkpoints(str(tmp_path), label="beta")
    ] == ["beta-w00003.ckpt"]
    assert prune_checkpoints(str(tmp_path), retain=1, label="beta") == []


def test_prune_checkpoints_validation(tmp_path):
    from repro.checkpoint import list_checkpoints, prune_checkpoints

    with pytest.raises(CheckpointError, match="retain"):
        prune_checkpoints(str(tmp_path), retain=0)
    with pytest.raises(CheckpointError):
        list_checkpoints(str(tmp_path / "missing"))


def test_list_checkpoints_ignores_foreign_files(tmp_path):
    from repro.checkpoint import list_checkpoints

    checkpointer = Checkpointer(directory=str(tmp_path))
    checkpointer.save({"progress": {"windows": 1}})
    (tmp_path / "notes.txt").write_text("not a checkpoint")
    (tmp_path / "weird.ckpt").write_text("no -wNNNNN suffix")
    assert [os.path.basename(p) for p in list_checkpoints(str(tmp_path))] == [
        "session-w00001.ckpt"
    ]


def test_service_checkpoint_retain_bounds_files(tmp_path):
    from repro.checkpoint import list_checkpoints

    spec = SessionSpec(
        kind="stream", dataset="wine", k=3, windows=8, window_size=32,
        compute_privacy=False, seed=5,
    )
    with MiningService(
        max_inflight=1, checkpoint_dir=str(tmp_path), checkpoint_retain=1
    ) as service:
        service.submit(spec, checkpoint_every=2).result(timeout=120)
    assert len(list_checkpoints(str(tmp_path))) == 1


def test_service_rejects_bad_checkpoint_retain(tmp_path):
    with pytest.raises(ValueError, match="checkpoint_retain"):
        MiningService(checkpoint_dir=str(tmp_path), checkpoint_retain=0)
