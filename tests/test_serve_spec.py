"""SessionSpec: construction-time validation, conversions, JSON round trip."""

import pytest

from repro.parties.config import SAPConfig, ClassifierSpec
from repro.serve import SessionSpec
from repro.streaming import StreamConfig, TrustChange, make_stream


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "overrides,needle",
    [
        ({"kind": "nope"}, "session kind"),
        ({"tenant": ""}, "tenant"),
        ({"k": 1}, "k must be"),
        ({"k": -3}, "k must be"),
        ({"noise_sigma": -0.1}, "noise_sigma"),
        ({"scheme": "zigzag"}, "partition scheme"),
        ({"stream": "tsunami"}, "stream kind"),
        ({"windows": 0}, "windows"),
        ({"window_size": 1}, "window_size"),
        ({"window_kind": "hopping"}, "window kind"),
        ({"window_step": 0}, "window_step"),
        ({"normalizer": "robust"}, "normalizer"),
        ({"detector": "page-hinkley"}, "drift detector"),
        ({"n_records": 0}, "n_records"),
        ({"shards": 0}, "shards"),
        ({"shard_backend": "gpu"}, "shard backend"),
        ({"shard_plan": "random"}, "shard plan"),
        ({"kind": "batch", "classifier": "resnet"}, "batch classifier"),
        ({"kind": "stream", "classifier": "svm_rbf"}, "stream classifier"),
        ({"watermark_delay": -1}, "watermark_delay"),
        ({"late_policy": "vanish"}, "late policy"),
        ({"skew": -1}, "skew"),
        ({"test_fraction": 1.5}, "test_fraction"),
        ({"optimizer_rounds": 0}, "optimizer_rounds"),
        ({"optimizer_local_steps": -1}, "optimizer_local_steps"),
        ({"target_candidates": 0}, "target_candidates"),
        ({"round_timeout": 0.0}, "round_timeout"),
        ({"readapt_cooldown": -1}, "readapt_cooldown"),
    ],
)
def test_bad_field_raises_friendly_valueerror(overrides, needle):
    with pytest.raises(ValueError) as excinfo:
        SessionSpec(**overrides)
    assert needle in str(excinfo.value)


def test_stream_classifier_names_differ_from_batch():
    # svm_rbf is batch-only, knn is valid in both worlds.
    SessionSpec(kind="batch", classifier="svm_rbf")
    SessionSpec(kind="stream", classifier="linear_svm")
    SessionSpec(kind="stream", classifier="knn")


def test_defaults_depend_on_kind():
    batch = SessionSpec(kind="batch")
    stream = SessionSpec(kind="stream")
    assert batch.effective_k == 5
    assert stream.effective_k == 3
    assert batch.effective_classifier == "knn"
    assert stream.effective_records == stream.windows * stream.window_size
    # compute_privacy mirrors each kind's legacy default.
    assert batch.effective_privacy is False
    assert stream.effective_privacy is True
    assert stream.to_stream_config().compute_privacy is True
    assert SessionSpec(kind="stream", compute_privacy=False).effective_privacy is False


# ----------------------------------------------------------------------
# tenant seed namespacing
# ----------------------------------------------------------------------
def test_default_tenant_keeps_raw_seed():
    assert SessionSpec(seed=42).resolved_seed() == 42


def test_tenants_get_independent_deterministic_seeds():
    a = SessionSpec(seed=42, tenant="acme")
    b = SessionSpec(seed=42, tenant="globex")
    assert a.resolved_seed() != 42
    assert a.resolved_seed() != b.resolved_seed()
    assert a.resolved_seed() == SessionSpec(seed=42, tenant="acme").resolved_seed()
    # Different seeds stay different inside one tenant's namespace.
    assert a.resolved_seed() != SessionSpec(seed=43, tenant="acme").resolved_seed()


def test_for_tenant_renamespaces():
    spec = SessionSpec(seed=5)
    assert spec.for_tenant("acme").resolved_seed() != spec.resolved_seed()
    assert spec.for_tenant("acme").dataset == spec.dataset


# ----------------------------------------------------------------------
# conversions to the execution configs
# ----------------------------------------------------------------------
def test_to_sap_config_round_trips_the_legacy_config():
    config = SAPConfig(
        k=4,
        noise_sigma=0.1,
        classifier=ClassifierSpec("linear_svm", {"epochs": 3}),
        seed=11,
        shards=2,
        shard_backend="thread",
    )
    spec = SessionSpec.from_batch("wine", config, scheme="class")
    assert spec.to_sap_config() == config
    assert spec.scheme == "class"


def test_to_stream_config_round_trips_the_legacy_config():
    config = StreamConfig(
        k=3,
        window_size=32,
        classifier="linear_svm",
        normalizer="zscore",
        detector="ks",
        trust_changes=(TrustChange(window=2, party=0, trust=0.5),),
        seed=9,
    )
    source = make_stream("iris", kind="gradual", n_records=128, seed=9)
    spec = SessionSpec.from_stream(source, config)
    assert spec.to_stream_config() == config
    assert spec.stream == "gradual"
    assert spec.effective_records == 128


def test_event_time_knobs_round_trip_to_stream_config():
    config = StreamConfig(
        k=3,
        window_size=32,
        watermark_delay=4,
        late_policy="readmit",
        skew=6,
        seed=2,
    )
    source = make_stream("iris", n_records=128, seed=2)
    spec = SessionSpec.from_stream(source, config)
    assert spec.watermark_delay == 4
    assert spec.late_policy == "readmit"
    assert spec.skew == 6
    assert spec.to_stream_config() == config
    # ...and through the JSON workload representation too.
    again = SessionSpec.from_mapping(spec.to_mapping())
    assert again.to_stream_config() == config
    mapping = spec.to_mapping()
    assert mapping["watermark_delay"] == 4
    assert mapping["late_policy"] == "readmit"
    assert mapping["skew"] == 6


def test_overlap_round_trips_through_spec_and_mapping():
    for overlap in (True, False, None):
        config = StreamConfig(k=3, window_size=32, overlap=overlap, seed=2)
        source = make_stream("iris", n_records=128, seed=2)
        spec = SessionSpec.from_stream(source, config)
        assert spec.overlap is overlap
        assert spec.to_stream_config() == config
        # ...and through the JSON workload representation too.
        mapping = spec.to_mapping()
        assert mapping["overlap"] is overlap
        again = SessionSpec.from_mapping(mapping)
        assert again.overlap is overlap
        assert again.to_stream_config() == config


def test_overlap_rejects_non_bool():
    with pytest.raises(ValueError, match="overlap"):
        SessionSpec(kind="stream", overlap="yes")


def test_wrong_kind_conversion_raises():
    with pytest.raises(ValueError, match="not a stream session"):
        SessionSpec(kind="batch").to_stream_config()
    with pytest.raises(ValueError, match="not a batch session"):
        SessionSpec(kind="stream").to_sap_config()
    with pytest.raises(ValueError, match="not a stream session"):
        SessionSpec(kind="batch").make_source()


def test_trust_changes_accept_mappings_and_triples():
    spec = SessionSpec(
        kind="stream",
        trust_changes=(
            {"window": 3, "party": 1, "trust": 0.5},
            (5, 0, 0.25),
        ),
    )
    assert spec.trust_changes == (
        TrustChange(window=3, party=1, trust=0.5),
        TrustChange(window=5, party=0, trust=0.25),
    )


# ----------------------------------------------------------------------
# JSON workload round trip
# ----------------------------------------------------------------------
def test_from_mapping_rejects_unknown_keys():
    with pytest.raises(ValueError) as excinfo:
        SessionSpec.from_mapping({"kind": "batch", "classifierr": "knn"})
    assert "classifierr" in str(excinfo.value)


def test_mapping_round_trip_batch_and_stream():
    for spec in (
        SessionSpec(kind="batch", dataset="wine", k=4, tenant="acme", seed=3,
                    classifier="lda", compute_privacy=True,
                    optimize_locally=True, optimizer_rounds=3,
                    optimizer_local_steps=2, target_candidates=2,
                    round_timeout=9.5, test_fraction=0.25),
        SessionSpec(kind="stream", dataset="iris", windows=4, window_size=32,
                    stream="abrupt", detector="ks", tenant="globex",
                    readapt_cooldown=5, trust_changes=((2, 0, 0.5),)),
    ):
        again = SessionSpec.from_mapping(spec.to_mapping())
        assert again.kind == spec.kind
        assert again.tenant == spec.tenant
        assert again.resolved_seed() == spec.resolved_seed()
        if spec.kind == "batch":
            assert again.to_sap_config() == spec.to_sap_config()
        else:
            assert again.to_stream_config() == spec.to_stream_config()


def test_classifier_params_accept_mapping_in_workload_entries():
    spec = SessionSpec.from_mapping(
        {"kind": "batch", "classifier": "knn", "classifier_params": {"n_neighbors": 3}}
    )
    assert spec.to_sap_config().classifier.params == {"n_neighbors": 3}


def test_params_accept_mappings_in_the_constructor_too():
    spec = SessionSpec(
        kind="batch", classifier="knn", classifier_params={"n_neighbors": 3}
    )
    assert spec.classifier_params == (("n_neighbors", 3),)
    assert spec.to_sap_config().classifier.params == {"n_neighbors": 3}
    stream = SessionSpec(kind="stream", detector_params={"threshold": 0.5})
    assert stream.to_stream_config().detector_params == (("threshold", 0.5),)


def test_display_label():
    assert SessionSpec(kind="batch", dataset="wine").display_label == (
        "default/batch:wine"
    )
    assert SessionSpec(label="my-run").display_label == "my-run"
