"""MiningService: concurrency, determinism, admission control, tenancy."""

import threading

import pytest

from repro import SAPConfig, load_dataset, run_sap_session
from repro.serve import (
    AdmissionError,
    MiningService,
    SessionSpec,
    TenantPolicy,
)
from repro.streaming import run_stream_session


def mixed_workload():
    """8 mixed batch/stream specs across three tenants."""
    specs = []
    for index, tenant in enumerate(["default", "acme", "globex", "acme"]):
        specs.append(
            SessionSpec(
                kind="batch", dataset="iris", k=3, seed=7 + index, tenant=tenant
            )
        )
        specs.append(
            SessionSpec(
                kind="stream",
                dataset="iris",
                stream="abrupt" if index % 2 else "stationary",
                windows=3,
                window_size=32,
                k=3,
                seed=3 + index,
                tenant=tenant,
                compute_privacy=False,
            )
        )
    return specs


def run_legacy(spec):
    """The same spec through the legacy one-shot entry points."""
    if spec.kind == "batch":
        return run_sap_session(
            load_dataset(spec.dataset),
            spec.to_sap_config(),
            scheme=spec.scheme,
            compute_privacy=spec.effective_privacy,
        )
    return run_stream_session(spec.make_source(), spec.to_stream_config())


def assert_same_result(spec, served, legacy):
    """Bit-equality of everything deterministic in a result."""
    if spec.kind == "batch":
        assert served.accuracy_perturbed == legacy.accuracy_perturbed
        assert served.accuracy_standard == legacy.accuracy_standard
        assert served.messages_sent == legacy.messages_sent
        assert served.bytes_sent == legacy.bytes_sent
        assert served.forwarder_source_pairs == legacy.forwarder_source_pairs
    else:
        assert served.accuracy_perturbed == legacy.accuracy_perturbed
        assert served.accuracy_baseline == legacy.accuracy_baseline
        assert served.deviation_series() == legacy.deviation_series()
        assert served.messages_sent == legacy.messages_sent
        assert served.data_bytes_sent == legacy.data_bytes_sent
        assert [(e.reason, e.window) for e in served.events] == [
            (e.reason, e.window) for e in legacy.events
        ]


class GatedSource:
    """A stream source that blocks until the test releases its gate."""

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()
        self.name = inner.name
        self.kind = inner.kind
        self.dimension = inner.dimension

    def __iter__(self):
        """Wait for the gate, then yield the inner stream's records."""
        self.gate.wait(timeout=30)
        return iter(self._inner)


def gated_spec_and_source(seed=0, tenant="default", compute_privacy=False):
    spec = SessionSpec(
        kind="stream",
        dataset="iris",
        windows=2,
        window_size=32,
        k=3,
        seed=seed,
        tenant=tenant,
        compute_privacy=compute_privacy,
    )
    return spec, GatedSource(spec.make_source())


# ----------------------------------------------------------------------
# the acceptance criterion: 8 concurrent mixed sessions, one shared
# process pool, every result bit-identical to the legacy entry point
# ----------------------------------------------------------------------
def test_eight_concurrent_mixed_sessions_match_legacy_over_process_pool():
    specs = mixed_workload()
    assert len(specs) == 8
    with MiningService(
        max_inflight=8, shard_backend="process", shard_workers=2
    ) as service:
        served = service.run(specs)
        stats = service.stats()
    assert stats.completed == 8 and stats.failed == 0
    assert {t.tenant for t in stats.tenants} == {"default", "acme", "globex"}
    for spec, result in zip(specs, served):
        assert_same_result(spec, result, run_legacy(spec))


def test_concurrent_equals_sequential_submission():
    specs = mixed_workload()[:4]
    with MiningService(max_inflight=4, shard_backend="thread") as service:
        concurrent = service.run(specs)
    with MiningService(max_inflight=1, shard_backend="serial") as service:
        sequential = service.run(specs)
    for spec, a, b in zip(specs, concurrent, sequential):
        assert_same_result(spec, a, b)


# ----------------------------------------------------------------------
# tenant isolation
# ----------------------------------------------------------------------
def test_tenants_submitting_identical_specs_get_independent_seed_streams():
    base = SessionSpec(kind="batch", dataset="iris", k=3, seed=7)
    a, b = base.for_tenant("acme"), base.for_tenant("globex")
    assert a.resolved_seed() != b.resolved_seed()
    with MiningService(max_inflight=2, shard_backend="serial") as service:
        result_a, result_b = service.run([a, b])
    # Each tenant's run is exactly the legacy run at its namespaced seed —
    # isolated from the other tenant and from the raw-seed default run.
    for spec, served in ((a, result_a), (b, result_b)):
        legacy = run_sap_session(
            load_dataset("iris"), SAPConfig(k=3, seed=spec.resolved_seed())
        )
        assert_same_result(spec, served, legacy)
    assert result_a.forwarder_source_pairs != result_b.forwarder_source_pairs or (
        result_a.bytes_sent != result_b.bytes_sent
        or result_a.virtual_duration != result_b.virtual_duration
    )


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_capacity_rejection_is_friendly():
    spec, source = gated_spec_and_source()
    with MiningService(
        max_inflight=1, queue_limit=0, shard_backend="serial"
    ) as service:
        handle = service.submit(spec, source=source)
        with pytest.raises(AdmissionError, match="at capacity"):
            service.submit(spec)
        source.gate.set()
        handle.result(timeout=30)
        stats = service.stats()
    assert stats.rejected == 1
    assert stats.completed == 1


def test_tenant_session_budget():
    policy = TenantPolicy(max_sessions=1)
    spec = SessionSpec(kind="batch", dataset="iris", k=3, tenant="acme")
    with MiningService(
        max_inflight=2, shard_backend="serial", tenants={"acme": policy}
    ) as service:
        service.submit(spec).result(timeout=30)
        with pytest.raises(AdmissionError, match="session budget"):
            service.submit(spec)
        # Other tenants are unaffected.
        service.submit(spec.for_tenant("globex")).result(timeout=30)


def test_tenant_privacy_budget():
    policy = TenantPolicy(privacy_budget=0)
    plain = SessionSpec(kind="batch", dataset="iris", k=3, tenant="acme")
    private = SessionSpec(
        kind="batch", dataset="iris", k=3, tenant="acme", compute_privacy=True
    )
    with MiningService(
        max_inflight=1, shard_backend="serial", tenants={"acme": policy}
    ) as service:
        with pytest.raises(AdmissionError, match="privacy-evaluation"):
            service.submit(private)
        service.submit(plain).result(timeout=30)


def test_tenant_max_active():
    policy = TenantPolicy(max_active=1)
    spec, source = gated_spec_and_source(tenant="acme")
    with MiningService(
        max_inflight=4, shard_backend="serial", tenants={"acme": policy}
    ) as service:
        handle = service.submit(spec, source=source)
        with pytest.raises(AdmissionError, match="active"):
            service.submit(spec)
        source.gate.set()
        handle.result(timeout=30)
        # Capacity is freed once the first session settles.
        service.submit(spec).result(timeout=30)


def test_closed_service_rejects():
    service = MiningService(max_inflight=1, shard_backend="serial")
    service.close()
    with pytest.raises(AdmissionError, match="closed"):
        service.submit(SessionSpec(kind="batch", dataset="iris", k=3))


# ----------------------------------------------------------------------
# handle lifecycle
# ----------------------------------------------------------------------
def test_handle_lifecycle_and_cancel():
    first_spec, first_source = gated_spec_and_source(seed=0)
    second_spec, second_source = gated_spec_and_source(seed=1)
    with MiningService(max_inflight=1, shard_backend="serial") as service:
        first = service.submit(first_spec, source=first_source)
        second = service.submit(second_spec, source=second_source)
        assert second.poll() == "queued"
        assert second.cancel()
        first_source.gate.set()
        first.result(timeout=30)
        service.drain(timeout=30)
        assert first.poll() == "completed"
        assert second.poll() == "cancelled"
        assert first.wall_seconds > 0
        stats = service.stats()
    assert stats.completed == 1
    assert stats.cancelled == 1
    assert stats.active == 0


def test_cancel_frees_admission_capacity_immediately():
    running_spec, running_source = gated_spec_and_source(seed=0)
    with MiningService(
        max_inflight=1, queue_limit=1, shard_backend="serial"
    ) as service:
        running = service.submit(running_spec, source=running_source)
        queued_spec, _ = gated_spec_and_source(seed=1)
        queued = service.submit(queued_spec)
        assert queued.cancel()
        # The cancelled session's slot is free *now*, not when a driver
        # eventually reaches the dead work item.
        third_spec, third_source = gated_spec_and_source(seed=2)
        third = service.submit(third_spec, source=third_source)
        running_source.gate.set()
        third_source.gate.set()
        running.result(timeout=30)
        third.result(timeout=30)
        stats = service.stats()
    assert stats.cancelled == 1
    assert stats.completed == 2


def test_run_cleans_up_after_midlist_rejection():
    spec = SessionSpec(kind="batch", dataset="iris", k=3, tenant="acme")
    with MiningService(
        max_inflight=1,
        shard_backend="serial",
        tenants={"acme": TenantPolicy(max_sessions=1)},
    ) as service:
        with pytest.raises(AdmissionError, match="session budget"):
            service.run([spec, spec])
        service.drain(timeout=30)
        stats = service.stats()
    # The admitted session was not abandoned: it settled (completed or
    # cancelled) and nothing is left active.
    assert stats.active == 0
    assert stats.completed + stats.cancelled == 1


def test_wrapper_accepts_duck_typed_sources():
    # The legacy run_stream_session only ever required name/kind/dimension
    # and iteration from a source; the spec-driven wrapper must not demand
    # more (StreamSource-only fields are read leniently).
    spec, gated = gated_spec_and_source()

    class DuckSource:
        """Bare-minimum source surface."""

        name = "duck"
        kind = "mystery"  # not a registry stream kind
        dimension = gated.dimension

        def __iter__(self):
            gated.gate.set()
            return iter(gated)

    result = run_stream_session(DuckSource(), spec.to_stream_config())
    assert result.source_name == "duck"
    assert result.records_processed == spec.effective_records


def test_failed_session_surfaces_its_error():
    spec = SessionSpec(kind="batch", dataset="atlantis", k=3)
    with MiningService(max_inflight=1, shard_backend="serial") as service:
        handle = service.submit(spec)
        assert handle.wait(timeout=30) == "failed"
        with pytest.raises(KeyError, match="atlantis"):
            handle.result(timeout=1)
        stats = service.stats()
    assert stats.failed == 1


def test_stats_account_pool_demand_and_traffic():
    specs = mixed_workload()[:4]
    with MiningService(max_inflight=2, shard_backend="thread") as service:
        service.run(specs)
        stats = service.stats()
    assert stats.pool.tasks > 0
    assert stats.pool.busy_seconds > 0
    assert 0 <= stats.pool.utilization
    assert stats.records > 0
    assert stats.messages > 0 and stats.bytes > 0
    assert stats.sessions_per_second > 0
    payload = stats.to_dict()
    assert payload["completed"] == 4
    assert set(payload["tenants"]) == {t.tenant for t in stats.tenants}


def test_cancel_is_idempotent_under_a_thread_hammer():
    """Many racing cancellers: exactly one wins, the slot frees exactly once."""
    running_spec, running_source = gated_spec_and_source(seed=0)
    with MiningService(
        max_inflight=1, queue_limit=1, shard_backend="serial"
    ) as service:
        running = service.submit(running_spec, source=running_source)
        queued_spec, _ = gated_spec_and_source(seed=1)
        queued = service.submit(queued_spec)

        barrier = threading.Barrier(8)
        wins = []

        def hammer():
            barrier.wait(timeout=30)
            if queued.cancel():
                wins.append(threading.current_thread().name)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1  # one winner, however the race lands
        assert queued.cancel() is False  # and later callers lose too
        assert queued.poll() == "cancelled"

        # The admission slot was released exactly once: the queue has
        # room for exactly one more session, not two.
        third_spec, third_source = gated_spec_and_source(seed=2)
        third = service.submit(third_spec, source=third_source)
        with pytest.raises(AdmissionError, match="at capacity"):
            service.submit(gated_spec_and_source(seed=3)[0])
        running_source.gate.set()
        third_source.gate.set()
        running.result(timeout=30)
        third.result(timeout=30)
        stats = service.stats()
    assert stats.cancelled == 1
    assert stats.completed == 2
    assert stats.active == 0


def test_concurrent_sessions_pin_pool_utilization_at_most_one():
    """Overlapping sessions on one shared pool must not double-count busy
    time: utilization stays <= 1.0 no matter how demand overlaps."""
    specs = [
        SessionSpec(
            kind="stream",
            dataset="iris",
            windows=3,
            window_size=32,
            k=3,
            shards=4,
            seed=index,
            tenant="acme" if index % 2 else "globex",
            compute_privacy=False,
        )
        for index in range(6)
    ]
    with MiningService(
        max_inflight=6, shard_backend="thread", shard_workers=2
    ) as service:
        service.run(specs)
        stats = service.stats()
    assert stats.completed == 6
    assert stats.pool.busy_seconds > 0
    assert 0.0 <= stats.pool.utilization <= 1.0


def test_submit_accepts_raw_mappings():
    with MiningService(max_inflight=1, shard_backend="serial") as service:
        result = service.submit(
            {"kind": "batch", "dataset": "iris", "k": 3, "seed": 7}
        ).result(timeout=30)
    legacy = run_sap_session(load_dataset("iris"), SAPConfig(k=3, seed=7))
    assert result.accuracy_perturbed == legacy.accuracy_perturbed
    assert result.bytes_sent == legacy.bytes_sent
