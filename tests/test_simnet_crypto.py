"""Tests for the transport cipher."""

import numpy as np
import pytest

from repro.simnet.crypto import Ciphertext, SessionKey, decrypt, derive_key, encrypt
from repro.simnet.errors import TransportError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_roundtrip(rng):
    key = derive_key("alice", "bob")
    plaintext = b"the quick brown fox" * 10
    ciphertext = encrypt(key, plaintext, rng)
    assert decrypt(key, ciphertext) == plaintext


def test_empty_plaintext_roundtrip(rng):
    key = derive_key("a", "b")
    ciphertext = encrypt(key, b"", rng)
    assert decrypt(key, ciphertext) == b""


def test_ciphertext_differs_from_plaintext(rng):
    key = derive_key("alice", "bob")
    plaintext = b"x" * 256
    ciphertext = encrypt(key, plaintext, rng)
    assert ciphertext.body != plaintext


def test_distinct_nonces_give_distinct_ciphertexts(rng):
    key = derive_key("alice", "bob")
    plaintext = b"repeated message"
    c1 = encrypt(key, plaintext, rng)
    c2 = encrypt(key, plaintext, rng)
    assert c1.nonce != c2.nonce
    assert c1.body != c2.body


def test_key_derivation_is_symmetric():
    assert derive_key("alice", "bob").raw == derive_key("bob", "alice").raw


def test_key_derivation_separates_pairs():
    assert derive_key("alice", "bob").raw != derive_key("alice", "carol").raw


def test_tampered_body_rejected(rng):
    key = derive_key("alice", "bob")
    ciphertext = encrypt(key, b"attack at dawn", rng)
    tampered = Ciphertext(
        nonce=ciphertext.nonce,
        body=bytes([ciphertext.body[0] ^ 1]) + ciphertext.body[1:],
        tag=ciphertext.tag,
    )
    with pytest.raises(TransportError):
        decrypt(key, tampered)


def test_tampered_nonce_rejected(rng):
    key = derive_key("alice", "bob")
    ciphertext = encrypt(key, b"attack at dawn", rng)
    tampered = Ciphertext(
        nonce=bytes(len(ciphertext.nonce)),
        body=ciphertext.body,
        tag=ciphertext.tag,
    )
    with pytest.raises(TransportError):
        decrypt(key, tampered)


def test_wrong_key_rejected(rng):
    ciphertext = encrypt(derive_key("alice", "bob"), b"secret", rng)
    with pytest.raises(TransportError):
        decrypt(derive_key("alice", "carol"), ciphertext)


def test_short_key_rejected():
    with pytest.raises(TransportError):
        SessionKey(b"short")


def test_subkeys_differ():
    key = derive_key("alice", "bob")
    assert key.enc_key != key.mac_key


def test_ciphertext_len_accounts_for_all_parts(rng):
    key = derive_key("a", "b")
    ciphertext = encrypt(key, b"12345", rng)
    assert len(ciphertext) == len(ciphertext.nonce) + 5 + len(ciphertext.tag)


def test_long_message_roundtrip(rng):
    key = derive_key("a", "b")
    plaintext = bytes(range(256)) * 1000  # crosses many keystream blocks
    assert decrypt(key, encrypt(key, plaintext, rng)) == plaintext
