"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.normalization import MinMaxNormalizer
from repro.datasets.schema import Dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset(rng: np.random.Generator) -> Dataset:
    """A tiny 2-class Gaussian dataset (60 rows, 4 dims), normalized."""
    n_per_class = 30
    mean0 = np.zeros(4)
    mean1 = np.array([2.5, 2.0, -1.5, 1.0])
    X = np.vstack(
        [
            rng.normal(size=(n_per_class, 4)) + mean0,
            rng.normal(size=(n_per_class, 4)) + mean1,
        ]
    )
    y = np.array([0] * n_per_class + [1] * n_per_class)
    order = rng.permutation(len(y))
    X_norm = MinMaxNormalizer().fit_transform(X[order])
    return Dataset(name="toy", X=X_norm, y=y[order])


@pytest.fixture
def multiclass_dataset(rng: np.random.Generator) -> Dataset:
    """A 3-class dataset (90 rows, 5 dims), normalized."""
    means = [np.zeros(5), np.full(5, 2.2), np.array([2.2, -2.2, 2.2, -2.2, 0.0])]
    blocks = [rng.normal(size=(30, 5)) + mean for mean in means]
    X = np.vstack(blocks)
    y = np.repeat([0, 1, 2], 30)
    order = rng.permutation(len(y))
    X_norm = MinMaxNormalizer().fit_transform(X[order])
    return Dataset(name="toy3", X=X_norm, y=y[order])


@pytest.fixture
def columns_matrix(small_dataset: Dataset) -> np.ndarray:
    """The toy dataset in the paper's d x N orientation."""
    return small_dataset.columns()
