"""Tests for the geometric perturbation G(X) = RX + Psi + Delta."""

import numpy as np
import pytest

from repro.core.perturbation import (
    GeometricPerturbation,
    perturb_rows,
    sample_perturbation,
)
from repro.core.rotation import haar_orthogonal


@pytest.fixture
def perturbation(rng):
    return sample_perturbation(4, rng, noise_sigma=0.0)


@pytest.fixture
def noisy_perturbation(rng):
    return sample_perturbation(4, rng, noise_sigma=0.1)


class TestConstruction:
    def test_sample_has_requested_shape(self, perturbation):
        assert perturbation.rotation.shape == (4, 4)
        assert perturbation.translation.shape == (4,)
        assert perturbation.dimension == 4

    def test_translation_within_unit_cube(self, rng):
        p = sample_perturbation(200, rng)
        assert p.translation.min() >= -1.0 and p.translation.max() <= 1.0

    def test_non_orthogonal_rotation_rejected(self):
        with pytest.raises(ValueError):
            GeometricPerturbation(
                rotation=np.ones((3, 3)), translation=np.zeros(3)
            )

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            GeometricPerturbation(
                rotation=haar_orthogonal(3, rng), translation=np.zeros(4)
            )

    def test_negative_noise_rejected(self, rng):
        with pytest.raises(ValueError):
            GeometricPerturbation(
                rotation=haar_orthogonal(3, rng),
                translation=np.zeros(3),
                noise_sigma=-0.1,
            )

    def test_equality_semantics(self, perturbation):
        clone = GeometricPerturbation(
            rotation=perturbation.rotation.copy(),
            translation=perturbation.translation.copy(),
            noise_sigma=perturbation.noise_sigma,
        )
        assert clone == perturbation
        assert clone != perturbation.with_rotation(-perturbation.rotation)


class TestApply:
    def test_noise_free_apply_matches_formula(self, perturbation, columns_matrix):
        Y = perturbation.apply(columns_matrix)
        expected = (
            perturbation.rotation @ columns_matrix
            + perturbation.translation[:, None]
        )
        np.testing.assert_allclose(Y, expected)

    def test_apply_preserves_pairwise_distances_without_noise(
        self, perturbation, columns_matrix
    ):
        Y = np.asarray(perturbation.apply(columns_matrix))
        original = np.linalg.norm(
            columns_matrix[:, :1] - columns_matrix[:, 1:2]
        )
        perturbed = np.linalg.norm(Y[:, :1] - Y[:, 1:2])
        assert perturbed == pytest.approx(original)

    def test_noise_requires_rng(self, noisy_perturbation, columns_matrix):
        with pytest.raises(ValueError):
            noisy_perturbation.apply(columns_matrix)

    def test_return_noise_reconstructs_exactly(
        self, noisy_perturbation, columns_matrix, rng
    ):
        Y, noise = noisy_perturbation.apply(
            columns_matrix, rng=rng, return_noise=True
        )
        clean = noisy_perturbation.transform_clean(columns_matrix)
        np.testing.assert_allclose(Y, clean + noise)

    def test_noise_has_requested_scale(self, columns_matrix, rng):
        p = sample_perturbation(4, rng, noise_sigma=0.5)
        _, noise = p.apply(columns_matrix, rng=rng, return_noise=True)
        assert noise.std() == pytest.approx(0.5, rel=0.2)

    def test_wrong_orientation_rejected(self, perturbation, small_dataset):
        with pytest.raises(ValueError):
            perturbation.apply(small_dataset.X)  # rows, not columns


class TestInvert:
    def test_invert_recovers_clean_data(self, perturbation, columns_matrix):
        Y = perturbation.apply(columns_matrix)
        np.testing.assert_allclose(
            perturbation.invert(np.asarray(Y)), columns_matrix, atol=1e-10
        )

    def test_invert_leaves_rotated_noise(
        self, noisy_perturbation, columns_matrix, rng
    ):
        Y, noise = noisy_perturbation.apply(
            columns_matrix, rng=rng, return_noise=True
        )
        recovered = noisy_perturbation.invert(np.asarray(Y))
        residual = recovered - columns_matrix
        np.testing.assert_allclose(
            residual, noisy_perturbation.rotation.T @ noise, atol=1e-10
        )


class TestConveniences:
    def test_without_noise(self, noisy_perturbation):
        clean = noisy_perturbation.without_noise()
        assert clean.noise_sigma == 0.0
        np.testing.assert_array_equal(clean.rotation, noisy_perturbation.rotation)

    def test_with_rotation(self, perturbation, rng):
        new_rotation = haar_orthogonal(4, rng)
        updated = perturbation.with_rotation(new_rotation)
        np.testing.assert_array_equal(updated.rotation, new_rotation)
        np.testing.assert_array_equal(
            updated.translation, perturbation.translation
        )

    def test_perturb_rows_matches_column_path(self, perturbation, small_dataset):
        via_rows = perturb_rows(perturbation, small_dataset.X)
        via_columns = np.asarray(perturbation.apply(small_dataset.columns())).T
        np.testing.assert_allclose(via_rows, via_columns)

    def test_perturb_rows_rejects_1d(self, perturbation):
        with pytest.raises(ValueError):
            perturb_rows(perturbation, np.zeros(4))
