"""Tests for Naive Bayes, LDA, and the decision tree — including the
invariance/non-invariance contrast the ICDM'05 companion paper draws."""

import numpy as np
import pytest

from repro.core.perturbation import perturb_rows, sample_perturbation
from repro.mining.bayes import GaussianNaiveBayes
from repro.mining.lda import LinearDiscriminantAnalysis
from repro.mining.tree import DecisionTreeClassifier


class TestGaussianNaiveBayes:
    def test_separable(self, small_dataset):
        model = GaussianNaiveBayes().fit(small_dataset.X, small_dataset.y)
        assert model.score(small_dataset.X, small_dataset.y) > 0.9

    def test_multiclass(self, multiclass_dataset):
        model = GaussianNaiveBayes().fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.85

    def test_log_proba_shape(self, small_dataset):
        model = GaussianNaiveBayes().fit(small_dataset.X, small_dataset.y)
        scores = model.predict_log_proba(small_dataset.X)
        assert scores.shape == (small_dataset.n_rows, 2)

    def test_constant_column_tolerated(self, rng):
        X = np.hstack([rng.normal(size=(40, 2)), np.ones((40, 1))])
        y = np.array([0] * 20 + [1] * 20)
        X[y == 1, 0] += 4
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1)

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(rng.normal(size=(2, 2)))


class TestLDA:
    def test_separable(self, small_dataset):
        model = LinearDiscriminantAnalysis().fit(
            small_dataset.X, small_dataset.y
        )
        assert model.score(small_dataset.X, small_dataset.y) > 0.9

    def test_multiclass(self, multiclass_dataset):
        model = LinearDiscriminantAnalysis().fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.85

    def test_decision_scores_shape(self, multiclass_dataset):
        model = LinearDiscriminantAnalysis().fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        scores = model.decision_scores(multiclass_dataset.X)
        assert scores.shape == (multiclass_dataset.n_rows, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearDiscriminantAnalysis(shrinkage=1.5)

    def test_collinear_columns_tolerated(self, rng):
        base = rng.normal(size=(30, 2))
        X = np.hstack([base, base[:, :1]])  # duplicated column
        y = (base[:, 0] > 0).astype(int)
        model = LinearDiscriminantAnalysis(shrinkage=0.2).fit(X, y)
        assert model.score(X, y) > 0.8


class TestDecisionTree:
    def test_axis_aligned_problem_is_easy(self, rng):
        X = rng.uniform(size=(200, 3))
        y = (X[:, 1] > 0.5).astype(int)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.score(X, y) > 0.98
        assert model.depth_ <= 3

    def test_multiclass(self, multiclass_dataset):
        model = DecisionTreeClassifier(max_depth=6).fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.85

    def test_pure_node_stops_splitting(self, rng):
        X = rng.normal(size=(20, 2))
        y = np.zeros(20, dtype=int)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.n_nodes_ == 1

    def test_depth_limit_respected(self, rng):
        X = rng.uniform(size=(300, 4))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth_ <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_deterministic(self, small_dataset):
        a = DecisionTreeClassifier().fit(small_dataset.X, small_dataset.y)
        b = DecisionTreeClassifier().fit(small_dataset.X, small_dataset.y)
        np.testing.assert_array_equal(
            a.predict(small_dataset.X), b.predict(small_dataset.X)
        )


class TestInvarianceContrast:
    """The ICDM'05 taxonomy: LDA invariant; NB and trees not."""

    def agreement(self, factory, dataset, rng, probes):
        perturbation = sample_perturbation(dataset.n_features, rng)
        X_p = perturb_rows(perturbation, dataset.X)
        probes_p = perturb_rows(perturbation, probes)
        plain = factory().fit(dataset.X, dataset.y)
        rotated = factory().fit(X_p, dataset.y)
        return float(np.mean(plain.predict(probes) == rotated.predict(probes_p)))

    def test_lda_is_invariant(self, small_dataset, rng):
        probes = rng.uniform(0, 1, size=(60, small_dataset.n_features))
        score = self.agreement(
            lambda: LinearDiscriminantAnalysis(shrinkage=0.1),
            small_dataset,
            rng,
            probes,
        )
        assert score == pytest.approx(1.0)

    def test_naive_bayes_is_not_invariant(self, multiclass_dataset, rng):
        probes = rng.uniform(0, 1, size=(120, multiclass_dataset.n_features))
        score = self.agreement(
            GaussianNaiveBayes, multiclass_dataset, rng, probes
        )
        assert score < 0.999  # the model demonstrably changed

    def test_tree_is_not_invariant(self, multiclass_dataset, rng):
        probes = rng.uniform(0, 1, size=(120, multiclass_dataset.n_features))
        score = self.agreement(
            lambda: DecisionTreeClassifier(max_depth=4),
            multiclass_dataset,
            rng,
            probes,
        )
        assert score < 0.999
