"""Tests for linear learners and the one-vs-one reducer."""

import numpy as np
import pytest

from repro.mining.knn import KNNClassifier
from repro.mining.linear import AveragedPerceptron, LinearSVMClassifier, PegasosSVM
from repro.mining.multiclass import OneVsOneClassifier


@pytest.fixture
def separable(rng):
    X = np.vstack([rng.normal(size=(40, 3)) - 2, rng.normal(size=(40, 3)) + 2])
    y = np.array([0] * 40 + [1] * 40)
    return X, y


class TestPerceptron:
    def test_separable(self, separable):
        X, y = separable
        model = AveragedPerceptron(epochs=10, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_updates_counted(self, separable):
        X, y = separable
        model = AveragedPerceptron(epochs=5, seed=0).fit(X, y)
        assert model.n_updates_ >= 1

    def test_single_class_constant(self, rng):
        X = rng.normal(size=(8, 2))
        y = np.zeros(8, dtype=int)
        model = AveragedPerceptron().fit(X, y)
        np.testing.assert_array_equal(model.predict(X), y)

    def test_multiclass_rejected(self, rng):
        X = rng.normal(size=(9, 2))
        with pytest.raises(ValueError):
            AveragedPerceptron().fit(X, np.array([0, 1, 2] * 3))

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            AveragedPerceptron(epochs=0)

    def test_deterministic(self, separable):
        X, y = separable
        a = AveragedPerceptron(seed=1).fit(X, y)
        b = AveragedPerceptron(seed=1).fit(X, y)
        np.testing.assert_allclose(a._w, b._w)


class TestPegasos:
    def test_separable(self, separable):
        X, y = separable
        model = PegasosSVM(lam=1e-3, epochs=20, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_decision_function_sign(self, separable):
        X, y = separable
        model = PegasosSVM(seed=0).fit(X, y)
        margins = model.decision_function(X)
        np.testing.assert_array_equal(
            model.predict(X) == model.classes_[1], margins >= 0
        )

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            PegasosSVM(lam=0.0)

    def test_multiclass_wrapper(self, multiclass_dataset):
        model = LinearSVMClassifier(epochs=15, seed=0).fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.8


class TestOneVsOne:
    def test_trains_one_model_per_pair(self, multiclass_dataset):
        model = OneVsOneClassifier(
            lambda seed: AveragedPerceptron(epochs=5, seed=seed)
        ).fit(multiclass_dataset.X, multiclass_dataset.y)
        assert model.n_pairs_ == 3  # C(3,2)

    def test_binary_case_single_pair(self, separable):
        X, y = separable
        model = OneVsOneClassifier(
            lambda seed: AveragedPerceptron(epochs=5, seed=seed)
        ).fit(X, y)
        assert model.n_pairs_ == 1

    def test_predictions_are_known_labels(self, multiclass_dataset):
        model = OneVsOneClassifier(
            lambda seed: PegasosSVM(epochs=10, seed=seed)
        ).fit(multiclass_dataset.X, multiclass_dataset.y)
        assert set(model.predict(multiclass_dataset.X)) <= {0, 1, 2}

    def test_single_class_dataset(self, rng):
        X = rng.normal(size=(6, 2))
        y = np.full(6, 4)
        model = OneVsOneClassifier(
            lambda seed: AveragedPerceptron(seed=seed)
        ).fit(X, y)
        np.testing.assert_array_equal(model.predict(X), y)

    def test_works_with_nondecision_learners(self, multiclass_dataset):
        """KNN has no decision_function; voting must still work."""
        model = OneVsOneClassifier(
            lambda seed: KNNClassifier(n_neighbors=3)
        ).fit(multiclass_dataset.X, multiclass_dataset.y)
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.85

    def test_predict_before_fit(self, rng):
        model = OneVsOneClassifier(lambda seed: AveragedPerceptron(seed=seed))
        with pytest.raises(RuntimeError):
            model.predict(rng.normal(size=(2, 2)))
