"""The bytes-level checkpoint API: dumps/loads as the wire counterpart.

``dumps_checkpoint`` bytes *are* a checkpoint file — the cluster's
process backend ships them between replicas verbatim — so the byte-level
loader must apply exactly the validation the file loader does, with
every damage mode a distinct, attributable :class:`CheckpointError`:
truncated header, foreign magic, schema version mismatch, length
mismatch, digest mismatch, undecodable payload, payload without session
state.  A corrupted migration payload must be *refused*, never silently
resumed.
"""

import hashlib
import os
import struct

import pytest

from repro.checkpoint import (
    CheckpointError,
    SCHEMA_VERSION,
    dumps_checkpoint,
    load_checkpoint,
    loads_checkpoint,
    save_checkpoint,
)
from repro.checkpoint.checkpoint import _HEADER, MAGIC


def _payload():
    return {
        "state": {"rng": [1, 2, 3], "epoch": 4},
        "config": {"k": 3, "seed": 7},
        "source": {"name": "wine", "kind": "replay"},
        "progress": {"records": 96, "windows": 3, "epochs": 1},
    }


def test_dumps_loads_round_trip_bit_exact():
    raw = dumps_checkpoint(_payload())
    checkpoint = loads_checkpoint(raw)
    assert checkpoint.payload == _payload()
    assert checkpoint.schema_version == SCHEMA_VERSION
    # The fingerprint names the encoded payload, not the header.
    assert checkpoint.fingerprint == hashlib.sha256(
        raw[_HEADER.size:]
    ).hexdigest()
    # Serialization is deterministic: same payload, same bytes.
    assert dumps_checkpoint(_payload()) == raw


def test_bytes_and_file_loaders_agree(tmp_path):
    raw = dumps_checkpoint(_payload())
    path = tmp_path / "session.ckpt"
    path.write_bytes(raw)
    from_file = load_checkpoint(str(path))
    from_bytes = loads_checkpoint(raw)
    assert from_file.fingerprint == from_bytes.fingerprint
    assert from_file.payload == from_bytes.payload
    # And save_checkpoint writes exactly the dumps bytes.
    saved = tmp_path / "saved.ckpt"
    save_checkpoint(str(saved), _payload())
    assert saved.read_bytes() == raw
    assert not os.path.exists(str(saved) + ".tmp")  # atomic: no droppings


def test_truncated_header_refused():
    raw = dumps_checkpoint(_payload())
    with pytest.raises(CheckpointError, match="truncated"):
        loads_checkpoint(raw[: _HEADER.size - 1])


def test_foreign_magic_refused():
    raw = dumps_checkpoint(_payload())
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        loads_checkpoint(b"WHAT" + raw[4:])


def test_schema_version_mismatch_refused():
    raw = dumps_checkpoint(_payload())
    _, _, digest, length = _HEADER.unpack_from(raw)
    bumped = _HEADER.pack(MAGIC, SCHEMA_VERSION + 1, digest, length)
    with pytest.raises(CheckpointError, match="schema version"):
        loads_checkpoint(bumped + raw[_HEADER.size:])


def test_length_mismatch_refused():
    raw = dumps_checkpoint(_payload())
    with pytest.raises(CheckpointError, match="promises"):
        loads_checkpoint(raw[:-1])


def test_digest_mismatch_refused():
    raw = bytearray(dumps_checkpoint(_payload()))
    raw[-1] ^= 0x01  # one flipped bit of payload
    with pytest.raises(CheckpointError, match="digest mismatch"):
        loads_checkpoint(bytes(raw))


def test_undecodable_payload_refused():
    body = b"\xff\xfe garbage that is not codec output"
    header = _HEADER.pack(
        MAGIC, SCHEMA_VERSION, hashlib.sha256(body).digest(), len(body)
    )
    with pytest.raises(CheckpointError, match="does not decode"):
        loads_checkpoint(header + body)


def test_payload_without_session_state_refused():
    raw = dumps_checkpoint({"config": {"k": 3}})
    with pytest.raises(CheckpointError, match="session state"):
        loads_checkpoint(raw)


def test_origin_names_the_source_in_every_message():
    raw = dumps_checkpoint(_payload())
    with pytest.raises(CheckpointError, match="replica 3"):
        loads_checkpoint(raw[:-1], origin="replica 3")
    with pytest.raises(CheckpointError, match="replica 3"):
        loads_checkpoint(raw[: _HEADER.size - 1], origin="replica 3")


def test_unrelated_file_is_not_a_checkpoint(tmp_path):
    path = tmp_path / "notes.txt"
    path.write_bytes(b"just some text, definitely long enough to have a header span")
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load_checkpoint(str(path))
