"""Tests for min-max and z-score normalizers."""

import numpy as np
import pytest

from repro.core.normalization import MinMaxNormalizer, ZScoreNormalizer


class TestMinMax:
    def test_transform_lands_in_unit_interval(self, rng):
        X = rng.normal(size=(50, 4)) * 10 + 3
        out = MinMaxNormalizer().fit_transform(X)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_extremes_map_to_bounds(self, rng):
        X = rng.normal(size=(50, 3))
        out = MinMaxNormalizer().fit_transform(X)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(30, 5)) * 4 - 2
        normalizer = MinMaxNormalizer().fit(X)
        np.testing.assert_allclose(
            normalizer.inverse_transform(normalizer.transform(X)), X, atol=1e-10
        )

    def test_constant_column_maps_to_half(self, rng):
        X = rng.normal(size=(20, 2))
        X[:, 1] = 7.0
        out = MinMaxNormalizer().fit_transform(X)
        np.testing.assert_allclose(out[:, 1], 0.5)

    def test_out_of_range_values_extrapolate(self, rng):
        X = rng.uniform(0, 1, size=(20, 1))
        normalizer = MinMaxNormalizer().fit(X)
        beyond = normalizer.transform(np.array([[X.max() + (X.max() - X.min())]]))
        assert beyond[0, 0] > 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.zeros((2, 2)))

    def test_column_count_mismatch_rejected(self, rng):
        normalizer = MinMaxNormalizer().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            normalizer.transform(rng.normal(size=(10, 4)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.zeros(5))


class TestZScore:
    def test_transform_standardizes(self, rng):
        X = rng.normal(size=(200, 3)) * 5 + 10
        out = ZScoreNormalizer().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(40, 4)) * 3 + 1
        normalizer = ZScoreNormalizer().fit(X)
        np.testing.assert_allclose(
            normalizer.inverse_transform(normalizer.transform(X)), X, atol=1e-10
        )

    def test_constant_column_maps_to_zero(self, rng):
        X = rng.normal(size=(20, 2))
        X[:, 0] = -3.0
        out = ZScoreNormalizer().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ZScoreNormalizer().transform(np.zeros((2, 2)))

    def test_column_count_mismatch_rejected(self, rng):
        normalizer = ZScoreNormalizer().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            normalizer.transform(rng.normal(size=(10, 2)))
