"""Tests for the network, channels, and node dispatch."""

import numpy as np
import pytest

from repro.simnet.channel import LatencyModel, Network
from repro.simnet.errors import (
    DuplicateAddressError,
    ProtocolViolationError,
    UnknownAddressError,
)
from repro.simnet.messages import MessageKind
from repro.simnet.node import Node


class EchoNode(Node):
    """Replies to every session announce with an ack."""

    def on_session_announce(self, message):
        self.send(MessageKind.SESSION_ACK, message.sender, {"re": message.msg_id})

    def on_session_ack(self, message):
        pass


def make_pair(seed=0):
    network = Network(seed=seed)
    a = EchoNode("a", network)
    b = EchoNode("b", network)
    return network, a, b


def test_message_delivery_and_reply():
    network, a, b = make_pair()
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {"hello": 1})
    network.run()
    assert len(b.received(MessageKind.SESSION_ANNOUNCE)) == 1
    assert len(a.received(MessageKind.SESSION_ACK)) == 1
    assert a.received(MessageKind.SESSION_ACK)[0].payload == {"re": 0}


def test_delivery_takes_positive_virtual_time():
    network, a, b = make_pair()
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {})
    network.run()
    assert network.simulator.now > 0.0


def test_numpy_payload_survives_the_wire():
    network, a, b = make_pair()
    matrix = np.arange(12.0).reshape(3, 4)
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {"m": matrix})
    network.run()
    received = b.received(MessageKind.SESSION_ANNOUNCE)[0]
    np.testing.assert_array_equal(received.payload["m"], matrix)


def test_unknown_recipient_raises_at_send():
    network, a, _b = make_pair()
    with pytest.raises(UnknownAddressError):
        a.send(MessageKind.SESSION_ANNOUNCE, "nobody", {})


def test_duplicate_address_rejected():
    network, _a, _b = make_pair()
    with pytest.raises(DuplicateAddressError):
        EchoNode("a", network)


def test_self_send_is_allowed():
    network, a, _b = make_pair()
    a.send(MessageKind.SESSION_ACK, "a", {"self": True})
    network.run()
    assert a.received(MessageKind.SESSION_ACK)[0].payload == {"self": True}


def test_missing_handler_raises_protocol_violation():
    network = Network()
    Node("plain", network)
    sender = EchoNode("sender", network)
    sender.send(MessageKind.ABORT, "plain", {})
    with pytest.raises(ProtocolViolationError):
        network.run()


def test_larger_payloads_take_longer():
    model = LatencyModel(base_latency=0.0, bandwidth=1000.0, jitter=0.0)
    rng = np.random.default_rng(0)
    assert model.delay(5000, rng) > model.delay(50, rng)


def test_latency_model_jitter_bounded():
    model = LatencyModel(base_latency=0.01, bandwidth=1e9, jitter=0.002)
    rng = np.random.default_rng(0)
    delays = [model.delay(100, rng) for _ in range(100)]
    assert all(0.01 <= d < 0.0121 for d in delays)


def test_per_link_latency_override():
    network, a, b = make_pair()
    slow = LatencyModel(base_latency=5.0, bandwidth=1e9, jitter=0.0)
    network.set_link_latency("a", "b", slow)
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {})
    network.run()
    # reply b->a uses the default fast link, so total is just over 5s
    assert 5.0 < network.simulator.now < 5.1


def test_network_counters():
    network, a, b = make_pair()
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {"x": 1})
    network.run()
    assert network.messages_sent == 2  # announce + ack
    assert network.bytes_sent > 0


def test_wire_observations_are_ciphertext_only():
    network, a, b = make_pair()
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {"secret": "raw"})
    network.run()
    wire = network.ledger.wire_traffic(sender="a")
    assert len(wire) == 1
    observation = wire[0]
    assert observation.sender == "a"
    assert observation.recipient == "b"
    assert observation.nbytes > 0
    assert not hasattr(observation, "payload")


def test_endpoint_observations_capture_plaintext():
    network, a, b = make_pair()
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {"secret": "raw"})
    network.run()
    seen = network.ledger.plaintexts_seen_by("b", MessageKind.SESSION_ANNOUNCE)
    assert len(seen) == 1
    assert seen[0].payload == {"secret": "raw"}


def test_deterministic_replay_same_seed():
    def run(seed):
        network, a, b = make_pair(seed=seed)
        a.send(MessageKind.SESSION_ANNOUNCE, "b", {"x": 1})
        network.run()
        return network.simulator.now

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_node_expect_exactly():
    network, a, b = make_pair()
    a.send(MessageKind.SESSION_ANNOUNCE, "b", {})
    network.run()
    b.expect_exactly(MessageKind.SESSION_ANNOUNCE, 1)
    with pytest.raises(ProtocolViolationError):
        b.expect_exactly(MessageKind.SESSION_ANNOUNCE, 2)


def test_addresses_listing():
    network, a, b = make_pair()
    assert network.addresses == ("a", "b")
    assert network.node("a") is a
    with pytest.raises(UnknownAddressError):
        network.node("zzz")
