"""Tests for the PCA attack and the average privacy metric."""

import numpy as np
import pytest

from repro.attacks.base import build_context
from repro.attacks.naive import NaiveEstimationAttack
from repro.attacks.pca import PCAAttack
from repro.core.perturbation import GeometricPerturbation, sample_perturbation
from repro.core.privacy import (
    average_privacy_guarantee,
    column_privacy,
    minimum_privacy_guarantee,
)


@pytest.fixture
def X(rng):
    """Anisotropic correlated columns — the structure PCA can exploit."""
    n = 500
    latent = rng.normal(size=(3, n))
    mixing = np.array(
        [
            [2.0, 0.1, 0.0],
            [0.3, 1.0, 0.05],
            [0.0, 0.2, 0.5],
            [1.0, -0.5, 0.2],
        ]
    )
    return mixing @ latent + np.array([[1.0], [0.5], [-0.3], [2.0]])


class TestPCAAttack:
    def test_estimate_shape(self, X, rng):
        p = sample_perturbation(4, rng)
        Y = np.asarray(p.apply(X))
        context = build_context(X, Y, known_fraction=0.05, rng=rng)
        estimate = PCAAttack().reconstruct(context)
        assert estimate.shape == X.shape

    def test_beats_naive_on_anisotropic_rotation(self, X, rng):
        """With a distinct spectrum, PCA alignment reconstructs better than
        per-column rescaling (averaged over columns)."""
        p = sample_perturbation(4, rng, noise_sigma=0.0)
        Y = np.asarray(p.apply(X))
        context = build_context(X, Y, known_fraction=0.05, max_known=20, rng=rng)
        pca_estimate = PCAAttack().reconstruct(context)
        naive_estimate = NaiveEstimationAttack().reconstruct(context)
        assert average_privacy_guarantee(X, pca_estimate) < \
            average_privacy_guarantee(X, naive_estimate) + 0.3

    def test_translation_is_recentred(self, X, rng):
        p = GeometricPerturbation(
            rotation=np.eye(4), translation=np.full(4, 0.7)
        )
        Y = np.asarray(p.apply(X))
        context = build_context(X, Y, known_fraction=0.1, max_known=20, rng=rng)
        estimate = PCAAttack().reconstruct(context)
        np.testing.assert_allclose(
            estimate.mean(axis=1), X.mean(axis=1), atol=0.2
        )

    def test_without_insider_samples_uses_marginals(self, X, rng):
        p = sample_perturbation(4, rng)
        Y = np.asarray(p.apply(X))
        context = build_context(X, Y, known_fraction=0.0, rng=rng)
        estimate = PCAAttack().reconstruct(context)
        assert np.isfinite(estimate).all()

    def test_noise_degrades_reconstruction(self, X):
        clean_rng = np.random.default_rng(0)
        noisy_rng = np.random.default_rng(0)
        p_clean = sample_perturbation(4, np.random.default_rng(1), 0.0)
        p_noisy = sample_perturbation(4, np.random.default_rng(1), 1.0)
        Y_clean = np.asarray(p_clean.apply(X))
        Y_noisy = np.asarray(p_noisy.apply(X, rng=np.random.default_rng(2)))
        ctx_clean = build_context(X, Y_clean, known_fraction=0.05, rng=clean_rng)
        ctx_noisy = build_context(X, Y_noisy, known_fraction=0.05, rng=noisy_rng)
        attack = PCAAttack()
        clean_privacy = average_privacy_guarantee(
            X, attack.reconstruct(ctx_clean)
        )
        noisy_privacy = average_privacy_guarantee(
            X, attack.reconstruct(ctx_noisy)
        )
        assert noisy_privacy >= clean_privacy - 0.15


class TestAveragePrivacy:
    def test_mean_of_columns(self, rng):
        X = rng.uniform(size=(3, 50))
        X_hat = X + rng.normal(scale=0.1, size=X.shape)
        expected = float(column_privacy(X, X_hat).mean())
        assert average_privacy_guarantee(X, X_hat) == pytest.approx(expected)

    def test_at_least_minimum(self, rng):
        X = rng.uniform(size=(4, 80))
        X_hat = X + rng.normal(scale=0.2, size=X.shape)
        assert average_privacy_guarantee(X, X_hat) >= minimum_privacy_guarantee(
            X, X_hat
        )

    def test_weighted_average(self, rng):
        X = rng.uniform(size=(2, 60))
        X_hat = X.copy()
        X_hat[1] += rng.normal(scale=0.5, size=60)
        # All weight on the untouched column -> ~0 privacy contribution.
        low = average_privacy_guarantee(X, X_hat, weights=np.array([1.0, 0.0]))
        high = average_privacy_guarantee(X, X_hat, weights=np.array([0.0, 1.0]))
        assert low == pytest.approx(0.0, abs=1e-9)
        assert high > 0.1

    def test_weight_validation(self, rng):
        X = rng.uniform(size=(2, 30))
        with pytest.raises(ValueError):
            average_privacy_guarantee(X, X, weights=np.array([1.0]))
        with pytest.raises(ValueError):
            average_privacy_guarantee(X, X, weights=np.array([-1.0, 1.0]))
        with pytest.raises(ValueError):
            average_privacy_guarantee(X, X, weights=np.array([0.0, 0.0]))
