"""The replica wire protocol, fuzzed: frames, envelopes, the server loop.

Every way a frame can be damaged — truncated length prefix, truncated
body, a prefix claiming gigabytes, bytes the codec cannot decode, a
payload that is not a mapping — must surface as a distinct, friendly
:class:`TransportError`, never a hang or a bare struct/codec traceback.
The envelope layer must keep exception identity across the wire
(admission refusals stay :class:`AdmissionError`, checkpoint damage
stays :class:`CheckpointError`), and :class:`ReplicaServer` — driven
here directly against in-memory streams, no child process — must wrap
every handler failure into an error envelope instead of dying.
"""

import io
import random
import struct

import pytest

from repro.checkpoint import CheckpointError
from repro.cluster import (
    MAX_FRAME_BYTES,
    TransportError,
    read_frame,
    write_frame,
)
from repro.cluster.protocol import (
    error_response,
    ok_response,
    unwrap_response,
)
from repro.cluster.replica import ReplicaServer, serve_connection
from repro.serve import AdmissionError, MiningService


def _spec_mapping(seed=5, windows=3):
    return {
        "kind": "stream", "dataset": "wine", "tenant": "acme", "k": 3,
        "windows": windows, "window_size": 32, "compute_privacy": False,
        "seed": seed,
    }


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def test_frame_round_trip_over_bytesio():
    payload = {
        "op": "submit",
        "nested": {"numbers": [1, 2, 3], "big": 2 ** 80},
        "text": "café",
        "blob": b"\x00\xff" * 16,
    }
    buffer = io.BytesIO()
    written = write_frame(buffer, payload)
    assert written == buffer.tell()
    buffer.seek(0)
    assert read_frame(buffer) == payload
    # Clean EOF between frames: None, not an error.
    assert read_frame(buffer) is None


def test_frame_round_trip_back_to_back():
    buffer = io.BytesIO()
    frames = [{"seq": i, "op": "ping"} for i in range(5)]
    for frame in frames:
        write_frame(buffer, frame)
    buffer.seek(0)
    assert [read_frame(buffer) for _ in frames] == frames
    assert read_frame(buffer) is None


def test_truncated_length_prefix_is_friendly():
    buffer = io.BytesIO(b"\x00\x00")
    with pytest.raises(TransportError, match="length\\s*prefix|prefix"):
        read_frame(buffer)


def test_truncated_body_is_friendly():
    buffer = io.BytesIO()
    write_frame(buffer, {"op": "ping"})
    whole = buffer.getvalue()
    for cut in (len(whole) - 1, len(whole) // 2, 5):
        with pytest.raises(TransportError, match="payload bytes"):
            read_frame(io.BytesIO(whole[:cut]))


def test_hostile_length_prefix_refused_without_allocating():
    prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(TransportError, match="corrupt or hostile"):
        read_frame(io.BytesIO(prefix))


def test_undecodable_payload_is_friendly():
    garbage = b"\xde\xad\xbe\xef not a codec payload"
    framed = struct.pack(">I", len(garbage)) + garbage
    with pytest.raises(TransportError, match="cannot decode"):
        read_frame(io.BytesIO(framed))


def test_non_mapping_payload_is_refused_both_ways():
    with pytest.raises(TransportError, match="must be a mapping"):
        write_frame(io.BytesIO(), ["not", "a", "dict"])
    # A well-encoded non-mapping smuggled inside a valid frame.
    from repro.checkpoint.codec import encode

    body = encode([1, 2, 3])
    framed = struct.pack(">I", len(body)) + body
    with pytest.raises(TransportError, match="must be a mapping"):
        read_frame(io.BytesIO(framed))


def test_random_garbage_never_hangs_or_leaks_raw_errors():
    rng = random.Random(0xC0FFEE)
    for _ in range(200):
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
        try:
            frame = read_frame(io.BytesIO(blob))
        except TransportError:
            continue  # every refusal is the friendly type
        # The only non-error outcomes: clean EOF or a genuine mapping.
        assert frame is None or isinstance(frame, dict)


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def test_ok_envelope_round_trip():
    assert unwrap_response(ok_response({"pid": 42})) == {"pid": 42}
    assert unwrap_response(ok_response()) is None


@pytest.mark.parametrize(
    "exc,expected",
    [
        (AdmissionError("tenant over budget"), AdmissionError),
        (CheckpointError("digest mismatch"), CheckpointError),
        (TransportError("desynced"), TransportError),
        (KeyError("no session 7"), KeyError),
        (ValueError("bad knob"), ValueError),
    ],
)
def test_error_envelope_keeps_exception_identity(exc, expected):
    with pytest.raises(expected):
        unwrap_response(error_response(exc))


def test_unknown_error_type_degrades_to_runtime_error():
    class Exotic(Exception):
        pass

    with pytest.raises(RuntimeError, match="Exotic"):
        unwrap_response(error_response(Exotic("boom")))


def test_unwrap_none_means_connection_died():
    with pytest.raises(TransportError, match="closed the connection"):
        unwrap_response(None)


# ----------------------------------------------------------------------
# the server, driven without a process
# ----------------------------------------------------------------------
def test_replica_server_full_session_lifecycle():
    with MiningService(max_inflight=2) as service:
        server = ReplicaServer(service)
        response, serving = server.handle_request(
            {"op": "submit", "spec": _spec_mapping()}
        )
        assert serving
        session_id = unwrap_response(response)["session_id"]

        response, _ = server.handle_request(
            {"op": "wait", "session_id": session_id, "timeout": 60}
        )
        assert unwrap_response(response)["status"] == "completed"

        response, _ = server.handle_request(
            {"op": "result", "session_id": session_id}
        )
        wire = unwrap_response(response)["result"]
        assert wire["records_processed"] > 0

        response, _ = server.handle_request({"op": "stats"})
        assert unwrap_response(response)["stats"]["completed"] == 1

        response, serving = server.handle_request({"op": "shutdown"})
        assert not serving


def test_replica_server_wraps_failures_into_envelopes():
    with MiningService(max_inflight=2) as service:
        server = ReplicaServer(service)
        response, serving = server.handle_request(
            {"op": "poll", "session_id": 999}
        )
        assert serving  # one bad request never kills the loop
        with pytest.raises(KeyError, match="999"):
            unwrap_response(response)

        response, serving = server.handle_request({"op": "frobnicate"})
        assert serving
        with pytest.raises(ValueError, match="frobnicate"):
            unwrap_response(response)


def test_serve_connection_speaks_frames_end_to_end():
    class Duplex:
        """Requests come from one buffer, responses land in another."""

        def __init__(self, requests: bytes) -> None:
            self._requests = io.BytesIO(requests)
            self.responses = io.BytesIO()

        def read(self, n: int) -> bytes:
            return self._requests.read(n)

        def write(self, data: bytes) -> None:
            self.responses.write(data)

    requests = io.BytesIO()
    write_frame(requests, {"op": "ping"})
    write_frame(requests, {"op": "stats"})
    write_frame(requests, {"op": "shutdown"})
    with MiningService(max_inflight=2) as service:
        stream = Duplex(requests.getvalue())
        serve_connection(stream, service)
    stream.responses.seek(0)
    ping = unwrap_response(read_frame(stream.responses))
    assert ping["active"] == 0 and ping["pid"] > 0
    stats = unwrap_response(read_frame(stream.responses))
    assert stats["stats"]["submitted"] == 0
    shutdown = unwrap_response(read_frame(stream.responses))
    assert shutdown["pid"] == ping["pid"]
    assert read_frame(stream.responses) is None
