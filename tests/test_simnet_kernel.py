"""Tests for the discrete-event kernel."""

import pytest

from repro.simnet.errors import SchedulingError
from repro.simnet.kernel import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda: seen.append("c"))
    sim.schedule(1.0, lambda: seen.append("a"))
    sim.schedule(2.0, lambda: seen.append("b"))
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in "abcde":
        sim.schedule(1.0, lambda l=label: seen.append(l))
    sim.run()
    assert seen == list("abcde")


def test_clock_advances_to_event_times():
    sim = Simulator()
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 2.5]
    assert sim.now == 2.5


def test_start_time_offset():
    sim = Simulator(start_time=10.0)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 11.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_schedule_at_past_rejected():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SchedulingError):
        sim.schedule_at(4.0, lambda: None)


def test_cancelled_event_is_skipped():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, lambda: seen.append("cancelled"))
    sim.schedule(2.0, lambda: seen.append("kept"))
    event.cancel()
    executed = sim.run()
    assert seen == ["kept"]
    assert executed == 1


def test_run_until_stops_and_fast_forwards():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(5.0, lambda: seen.append(5))
    executed = sim.run(until=3.0)
    assert executed == 1
    assert seen == [1]
    assert sim.now == 3.0
    sim.run()
    assert seen == [1, 5]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_max_events_limits_execution():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: seen.append(i))
    executed = sim.run(max_events=4)
    assert executed == 4
    assert seen == [0, 1, 2, 3]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(1.0, lambda: seen.append("nested"))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "nested"]
    assert sim.now == 2.0


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 3


def test_pending_events_property():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
