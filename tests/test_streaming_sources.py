"""Stream-source behaviour: determinism, drift schedules, arrival times."""

import numpy as np
import pytest

from repro.datasets.registry import load_dataset
from repro.streaming.sources import (
    STREAM_KINDS,
    StreamRecord,
    StreamSource,
    make_stream,
    skewed,
)


def collect(source):
    xs, ys, ts = [], [], []
    for record in source:
        xs.append(record.x)
        ys.append(record.y)
        ts.append(record.time)
    return np.vstack(xs), np.asarray(ys), np.asarray(ts)


def test_shapes_labels_and_monotone_time():
    source = make_stream("iris", n_records=200, seed=0)
    X, y, t = collect(source)
    pool = load_dataset("iris")
    assert X.shape == (200, pool.n_features)
    assert set(np.unique(y)) <= set(int(c) for c in pool.classes)
    assert np.all(np.diff(t) > 0)


def test_deterministic_under_seed():
    a = collect(make_stream("wine", kind="abrupt", n_records=100, seed=3))
    b = collect(make_stream("wine", kind="abrupt", n_records=100, seed=3))
    c = collect(make_stream("wine", kind="abrupt", n_records=100, seed=4))
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
    assert not np.array_equal(a[0], c[0])


def test_stationary_mean_matches_pool():
    pool = load_dataset("wine")
    X, _, _ = collect(make_stream(pool, n_records=4000, seed=0))
    pool_std = pool.X.std(axis=0)
    shift = np.abs(X.mean(axis=0) - pool.X.mean(axis=0)) / np.where(
        pool_std > 0, pool_std, 1.0
    )
    assert shift.max() < 0.15


def test_abrupt_drift_shifts_the_tail():
    source = make_stream("wine", kind="abrupt", n_records=1000, seed=0, magnitude=2.0)
    X, _, _ = collect(source)
    split = source.drift_index
    pool_std = source.pool.X.std(axis=0)
    delta = np.abs(X[split:].mean(axis=0) - X[:split].mean(axis=0)) / np.where(
        pool_std > 0, pool_std, 1.0
    )
    assert delta.max() > 0.8


def test_gradual_drift_ramps():
    source = make_stream(
        "wine", kind="gradual", n_records=1000, seed=0,
        drift_at=0.4, transition=0.4, magnitude=2.0,
    )
    X, _, _ = collect(source)
    pre = X[:400].mean(axis=0)
    mid = X[500:600].mean(axis=0)
    post = X[850:].mean(axis=0)
    pool_std = source.pool.X.std(axis=0)
    safe = np.where(pool_std > 0, pool_std, 1.0)
    mid_shift = np.abs(mid - pre).max() / safe.max()
    post_shift = (np.abs(post - pre) / safe).max()
    assert 0 < mid_shift < post_shift


def test_bursty_rate_alternates():
    source = make_stream(
        "iris", kind="bursty", n_records=800, seed=0, rate=100.0, burst_factor=10.0
    )
    _, _, t = collect(source)
    gaps = np.diff(t)
    period = 800 // 8
    fast = np.concatenate([gaps[i : i + period] for i in (0, 2 * period)])
    slow = np.concatenate([gaps[period : 2 * period], gaps[3 * period : 4 * period]])
    assert slow.mean() > 3.0 * fast.mean()


def test_records_are_sequence_stamped_events():
    source = make_stream("iris", n_records=50, seed=0)
    records = list(source)
    assert [r.seq for r in records] == list(range(50))
    # Provider attribution defaults to "unassigned" (the consumer's k
    # decides the round-robin), and the legacy 3-field view still works.
    assert all(r.provider == -1 for r in records)
    x, y, t = records[0].x, records[0].y, records[0].time
    assert x.shape == (source.dimension,) and isinstance(y, int) and t > 0


def event_stream(n):
    return [
        StreamRecord(x=np.array([float(i)]), y=0, time=float(i), seq=i)
        for i in range(n)
    ]


def test_skewed_is_a_bounded_displacement_permutation():
    n, skew = 200, 5
    out = list(skewed(event_stream(n), skew, seed=1))
    seqs = [r.seq for r in out]
    assert sorted(seqs) == list(range(n))
    assert seqs != list(range(n))
    for position, seq in enumerate(seqs):
        assert abs(position - seq) <= skew
    # Observed lateness (frontier gap at arrival) never exceeds the skew.
    frontier, lateness = -1, 0
    for seq in seqs:
        lateness = max(lateness, frontier - seq)
        frontier = max(frontier, seq)
    assert 0 < lateness <= skew


def test_skewed_preserves_event_identity():
    records = event_stream(40)
    out = sorted(skewed(records, 6, seed=2), key=lambda r: r.seq)
    for original, delivered in zip(records, out):
        assert delivered.seq == original.seq
        assert delivered.time == original.time
        assert np.array_equal(delivered.x, original.x)


def test_skewed_determinism_and_identity_cases():
    records = event_stream(60)
    a = [r.seq for r in skewed(records, 4, seed=7)]
    b = [r.seq for r in skewed(records, 4, seed=7)]
    c = [r.seq for r in skewed(records, 4, seed=8)]
    assert a == b and a != c
    assert [r.seq for r in skewed(records, 0, seed=7)] == list(range(60))
    with pytest.raises(ValueError):
        list(skewed(records, -1))


def test_skewed_stamps_unsequenced_records():
    plain = [
        StreamRecord(x=np.array([float(i)]), y=0, time=float(i))
        for i in range(20)
    ]
    out = list(skewed(plain, 3, seed=0))
    assert sorted(r.seq for r in out) == list(range(20))


def test_validation_errors():
    pool = load_dataset("iris")
    with pytest.raises(ValueError):
        StreamSource(name="x", kind="wiggly", pool=pool, n_records=10)
    with pytest.raises(ValueError):
        StreamSource(name="x", kind="abrupt", pool=pool, n_records=0)
    with pytest.raises(ValueError):
        StreamSource(name="x", kind="abrupt", pool=pool, n_records=10, drift_at=1.5)
    with pytest.raises(KeyError):
        make_stream("not-a-dataset", n_records=10)
    assert STREAM_KINDS == ("stationary", "abrupt", "gradual", "bursty")
