"""Backward compatibility: the redesigned wrappers are bit-identical.

``run_sap_session`` / ``run_stream_session`` now route through
``SessionSpec`` + ``execute_spec``.  These tests pin them to fingerprints
captured from the pre-redesign implementations at fixed seeds (exact
float equality — *bit*-identical, not approximately equal), and check the
wrapper path against the internal execution path it delegates to.
"""

import numpy as np

from repro import SAPConfig, load_dataset, run_sap_session
from repro.core.session import _execute_sap_session
from repro.parties.config import ClassifierSpec
from repro.serve import SessionSpec, execute_spec
from repro.streaming import StreamConfig, make_stream, run_stream_session
from repro.streaming.stream_session import _execute_stream_session


# Captured from the pre-redesign code paths (commit 851a604) at these seeds.
BATCH_FINGERPRINT = {
    "accuracy_perturbed": 1.0,
    "accuracy_standard": 1.0,
    "messages_sent": 19,
    "bytes_sent": 16478,
    "virtual_duration": 0.04608162987072993,
}
PRIVACY_FINGERPRINT = {
    "accuracy_perturbed": 0.9230769230769231,
    "accuracy_standard": 0.9038461538461539,
    "messages_sent": 25,
    "satisfactions": [
        0.8882420590763219,
        1.2922740201070597,
        1.1425335426135557,
        1.1980747331293695,
    ],
}
STREAM_FINGERPRINT = {
    "accuracy_perturbed": 0.91015625,
    "accuracy_baseline": 0.9140625,
    "messages_sent": 12,
    "bytes_sent": 2532,
    "records_processed": 256,
    "n_windows": 8,
    "readaptations": 1,
    "data_messages_sent": 32,
    "data_bytes_sent": 18984,
    "deviation_series": [0.0, -3.125, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
}


def test_run_sap_session_matches_pre_redesign_fingerprint():
    result = run_sap_session(load_dataset("iris"), SAPConfig(k=3, seed=7))
    assert result.accuracy_perturbed == BATCH_FINGERPRINT["accuracy_perturbed"]
    assert result.accuracy_standard == BATCH_FINGERPRINT["accuracy_standard"]
    assert result.messages_sent == BATCH_FINGERPRINT["messages_sent"]
    assert result.bytes_sent == BATCH_FINGERPRINT["bytes_sent"]
    assert result.virtual_duration == BATCH_FINGERPRINT["virtual_duration"]


def test_run_sap_session_privacy_matches_pre_redesign_fingerprint():
    result = run_sap_session(
        load_dataset("wine"),
        SAPConfig(k=4, seed=11, classifier=ClassifierSpec("linear_svm")),
        compute_privacy=True,
    )
    assert result.accuracy_perturbed == PRIVACY_FINGERPRINT["accuracy_perturbed"]
    assert result.accuracy_standard == PRIVACY_FINGERPRINT["accuracy_standard"]
    assert result.messages_sent == PRIVACY_FINGERPRINT["messages_sent"]
    assert [p.satisfaction for p in result.risk_profiles] == (
        PRIVACY_FINGERPRINT["satisfactions"]
    )


def test_run_stream_session_matches_pre_redesign_fingerprint():
    source = make_stream("iris", kind="abrupt", n_records=8 * 32, seed=3)
    result = run_stream_session(source, StreamConfig(k=3, window_size=32, seed=3))
    assert result.accuracy_perturbed == STREAM_FINGERPRINT["accuracy_perturbed"]
    assert result.accuracy_baseline == STREAM_FINGERPRINT["accuracy_baseline"]
    assert result.messages_sent == STREAM_FINGERPRINT["messages_sent"]
    assert result.bytes_sent == STREAM_FINGERPRINT["bytes_sent"]
    assert result.records_processed == STREAM_FINGERPRINT["records_processed"]
    assert len(result.windows) == STREAM_FINGERPRINT["n_windows"]
    assert result.readaptations == STREAM_FINGERPRINT["readaptations"]
    assert result.data_messages_sent == STREAM_FINGERPRINT["data_messages_sent"]
    assert result.data_bytes_sent == STREAM_FINGERPRINT["data_bytes_sent"]
    assert result.deviation_series() == STREAM_FINGERPRINT["deviation_series"]


def test_wrapper_equals_internal_batch_path():
    dataset = load_dataset("wine")
    config = SAPConfig(k=3, seed=5)
    wrapped = run_sap_session(dataset, config, scheme="class")
    direct = _execute_sap_session(dataset, config, scheme="class")
    assert wrapped.accuracy_perturbed == direct.accuracy_perturbed
    assert wrapped.accuracy_standard == direct.accuracy_standard
    assert wrapped.messages_sent == direct.messages_sent
    assert wrapped.bytes_sent == direct.bytes_sent
    assert wrapped.forwarder_source_pairs == direct.forwarder_source_pairs
    assert wrapped.config == direct.config


def test_wrapper_equals_internal_stream_path():
    config = StreamConfig(k=3, window_size=32, seed=1)

    def fresh_source():
        return make_stream("iris", kind="gradual", n_records=4 * 32, seed=1)

    wrapped = run_stream_session(fresh_source(), config)
    direct = _execute_stream_session(fresh_source(), config)
    assert wrapped.accuracy_perturbed == direct.accuracy_perturbed
    assert wrapped.accuracy_baseline == direct.accuracy_baseline
    assert wrapped.deviation_series() == direct.deviation_series()
    assert wrapped.messages_sent == direct.messages_sent
    assert wrapped.data_bytes_sent == direct.data_bytes_sent
    assert wrapped.config == direct.config


def test_execute_spec_equals_wrapper_for_default_tenant():
    spec = SessionSpec(kind="batch", dataset="iris", k=3, seed=7)
    via_spec = execute_spec(spec)
    via_wrapper = run_sap_session(load_dataset("iris"), SAPConfig(k=3, seed=7))
    assert via_spec.accuracy_perturbed == via_wrapper.accuracy_perturbed
    assert via_spec.messages_sent == via_wrapper.messages_sent
    assert via_spec.bytes_sent == via_wrapper.bytes_sent


def test_results_expose_json_views():
    batch = run_sap_session(load_dataset("iris"), SAPConfig(k=3, seed=7))
    payload = batch.to_dict()
    assert payload["kind"] == "batch"
    assert payload["accuracy_perturbed"] == batch.accuracy_perturbed

    source = make_stream("iris", n_records=2 * 32, seed=0)
    stream = run_stream_session(
        source, StreamConfig(k=3, window_size=32, compute_privacy=False)
    )
    payload = stream.to_dict()
    assert payload["kind"] == "stream"
    assert payload["deviation_series"] == stream.deviation_series()
    assert np.isfinite(payload["throughput"])
