"""Tests for the satisfaction-aware target-selection extension."""

import numpy as np
import pytest

from repro.core.session import run_sap_session
from repro.parties.config import ClassifierSpec, SAPConfig
from repro.simnet.messages import MessageKind


def make_config(**overrides):
    base = dict(
        k=4,
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
        target_candidates=3,
        seed=9,
    )
    base.update(overrides)
    return SAPConfig(**base)


class TestConfig:
    def test_default_is_paper_behaviour(self):
        assert SAPConfig().target_candidates == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SAPConfig(target_candidates=0)


class TestVotingRun:
    @pytest.fixture
    def result(self, small_dataset):
        return run_sap_session(
            small_dataset, make_config(), scheme="uniform", keep_network=True
        )

    def test_run_completes(self, result):
        assert result.miner_result is not None
        assert 0.0 <= result.accuracy_perturbed <= 1.0

    def test_coordinator_collected_all_votes(self, result):
        coordinator = result.network.node("coordinator")
        assert len(coordinator._votes) == 4
        assert coordinator.chosen_candidate is not None

    def test_chosen_candidate_maximizes_mean_vote(self, result):
        coordinator = result.network.node("coordinator")
        mean_scores = np.mean(list(coordinator._votes.values()), axis=0)
        assert coordinator.chosen_candidate == int(np.argmax(mean_scores))

    def test_target_params_match_chosen_candidate(self, result):
        coordinator = result.network.node("coordinator")
        chosen = coordinator.candidates[coordinator.chosen_candidate]
        np.testing.assert_array_equal(
            coordinator.target.rotation, chosen.rotation
        )

    def test_every_provider_voted_once(self, result):
        ledger = result.network.ledger
        votes = ledger.plaintexts_seen_by("coordinator", MessageKind.TARGET_VOTE)
        assert len(votes) == 4
        senders = {m.sender for m in votes}
        assert len(senders) == 4

    def test_votes_leak_only_scalars(self, result):
        """Each vote payload is exactly one score array of len(candidates)."""
        ledger = result.network.ledger
        for message in ledger.plaintexts_seen_by(
            "coordinator", MessageKind.TARGET_VOTE
        ):
            assert set(message.payload) == {"scores"}
            assert np.asarray(message.payload["scores"]).shape == (3,)

    def test_miner_never_sees_proposals_or_votes(self, result):
        kinds = {obs.kind for obs in result.network.ledger.view_of("miner")}
        assert MessageKind.TARGET_PROPOSALS not in kinds
        assert MessageKind.TARGET_VOTE not in kinds


class TestSingleCandidatePath:
    def test_no_voting_messages_when_single_candidate(self, small_dataset):
        result = run_sap_session(
            small_dataset,
            make_config(target_candidates=1),
            keep_network=True,
        )
        all_kinds = {obs.kind for obs in result.network.ledger.endpoint}
        assert MessageKind.TARGET_PROPOSALS not in all_kinds
        assert MessageKind.TARGET_VOTE not in all_kinds

    def test_deterministic_with_voting(self, small_dataset):
        a = run_sap_session(small_dataset, make_config())
        b = run_sap_session(small_dataset, make_config())
        assert a.accuracy_perturbed == b.accuracy_perturbed


class TestVotingImprovesSatisfaction:
    def test_ablation_rows(self, small_dataset):
        """The voting extension picks the argmax of mean provider scores,
        so across repeats its mean global guarantee should not be lower
        than the single-random-target baseline's."""
        from repro.analysis.experiments import target_selection_ablation

        rows = target_selection_ablation(
            dataset="iris", candidate_counts=(1, 4), k=3, repeats=2, seed=0
        )
        assert rows[0]["candidates"] == 1.0
        assert rows[1]["candidates"] == 4.0
        assert (
            rows[1]["mean_rho_global"] >= rows[0]["mean_rho_global"] - 0.05
        )
