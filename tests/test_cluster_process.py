"""Process-backed replicas: bit-identity across real OS process boundaries.

The transport refactor's governing property, swept where it is hardest:
with every replica a separate OS process behind the framed socket
protocol, any schedule of submits, live wire migrations, ``SIGKILL``
crashes with recovery, and park/resume hops must reproduce the
single-engine run **bit for bit**, and the merged :class:`ClusterStats`
must conserve every counter exactly — the per-replica sums crossing the
wire are the same numbers the in-process backend adds up locally.
"""

import os
import signal
import time

import pytest

from repro.cluster import ClusterController
from repro.serve import MiningService, SessionSpec


def _stream_spec(seed=5, tenant="acme", windows=10, **knobs):
    return SessionSpec(
        kind="stream", dataset="wine", k=3, windows=windows, window_size=32,
        compute_privacy=False, seed=seed, tenant=tenant, **knobs
    )


def _fingerprint(result):
    """Everything deterministic a stream result reports, bit for bit."""
    return (
        result.deviation_series(),
        result.messages_sent,
        result.bytes_sent,
        result.data_messages_sent,
        result.data_bytes_sent,
        result.records_processed,
    )


def _single_engine(spec):
    with MiningService(max_inflight=2) as service:
        return service.run([spec])[0]


def _assert_conserved(stats):
    """Cluster totals must equal per-replica sums exactly."""
    per = stats.per_replica
    assert stats.records == sum(s.records for s in per)
    assert stats.messages == sum(s.messages for s in per)
    assert stats.bytes == sum(s.bytes for s in per)
    assert stats.completed == sum(s.completed for s in per)
    assert stats.failed == sum(s.failed for s in per)
    assert stats.cancelled == sum(s.cancelled for s in per)
    assert stats.evicted == sum(s.evicted for s in per)
    assert stats.active == sum(s.active for s in per)
    assert sum(s.submitted for s in per) == stats.submitted + stats.migrations


def _wait_for_checkpoint(directory, timeout=30.0):
    """Block until some replica wrote a checkpoint file under ``directory``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for root, _, files in os.walk(directory):
            if any(name.endswith(".ckpt") for name in files):
                return
        time.sleep(0.01)
    raise AssertionError(f"no checkpoint appeared under {directory}")


# ----------------------------------------------------------------------
# plain runs across the wire
# ----------------------------------------------------------------------
@pytest.mark.parametrize("placement", ["hash", "least_loaded"])
def test_process_backend_bit_identical_and_conserved(tmp_path, placement):
    specs = [_stream_spec(seed=seed) for seed in (1, 2, 3)]
    unbroken = [_fingerprint(_single_engine(spec)) for spec in specs]
    with ClusterController(
        replicas=2,
        backend="process",
        placement=placement,
        checkpoint_dir=str(tmp_path),
    ) as cluster:
        sessions = [cluster.submit(spec) for spec in specs]
        results = [session.result(timeout=120) for session in sessions]
        stats = cluster.stats()
        assert [_fingerprint(result) for result in results] == unbroken
        assert stats.backend == "process"
        assert stats.replicas == 2
        assert stats.healthy_replicas == 2
        assert stats.completed == len(specs)
        _assert_conserved(stats)
        # Everything crossed a real wire: the transports counted it.
        for transport in cluster.replicas:
            assert transport.kind == "process"
            assert transport.frames_sent > 0
            assert transport.frames_received > 0
            assert transport.wire_bytes_sent > 0
            assert transport.wire_bytes_received > 0
            assert transport.pid > 0


def test_live_wire_migration_bit_identical(tmp_path):
    spec = _stream_spec(seed=9, windows=60)
    unbroken = _fingerprint(_single_engine(spec))
    with ClusterController(
        replicas=2, backend="process", checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(spec, checkpoint_every=1)
        source = session.replica
        landed = cluster.migrate(session.session_id, 1 - source)
        assert landed == 1 - source, "migration must happen mid-run"
        result = session.result(timeout=120)
        stats = cluster.stats()
    assert _fingerprint(result) == unbroken
    assert session.migrations >= 1
    assert stats.migrations >= 1
    _assert_conserved(stats)


# ----------------------------------------------------------------------
# crash recovery: SIGKILL mid-run, bit-identical resume elsewhere
# ----------------------------------------------------------------------
def test_sigkill_mid_run_recovers_bit_identical(tmp_path):
    spec = _stream_spec(seed=11, windows=60)
    unbroken = _fingerprint(_single_engine(spec))
    with ClusterController(
        replicas=2, backend="process", checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(spec, checkpoint_every=1)
        victim = cluster.replicas[session.replica]
        _wait_for_checkpoint(str(tmp_path))
        os.kill(victim.pid, signal.SIGKILL)
        result = session.result(timeout=120)
        stats = cluster.stats()
        assert _fingerprint(result) == unbroken
        assert session.poll() == "completed"
        assert session.replica != victim.index
        assert not victim.healthy
        assert stats.recoveries >= 1
        assert stats.healthy_replicas == 1
        _assert_conserved(stats)


def test_sigkill_with_concurrent_survivor_sessions(tmp_path):
    """The survivor's own sessions ride through a neighbor's crash."""
    crash_spec = _stream_spec(seed=21, windows=60)
    quiet_spec = _stream_spec(seed=22, windows=60)
    expected = {
        21: _fingerprint(_single_engine(crash_spec)),
        22: _fingerprint(_single_engine(quiet_spec)),
    }
    with ClusterController(
        replicas=2, backend="process", checkpoint_dir=str(tmp_path)
    ) as cluster:
        first = cluster.submit(crash_spec, checkpoint_every=1)
        second = cluster.submit(quiet_spec, checkpoint_every=1)
        if first.replica == second.replica:
            # Same placement: still a valid crash test, everything moves.
            pass
        victim = cluster.replicas[first.replica]
        _wait_for_checkpoint(str(tmp_path))
        os.kill(victim.pid, signal.SIGKILL)
        results = {
            21: _fingerprint(first.result(timeout=120)),
            22: _fingerprint(second.result(timeout=120)),
        }
        stats = cluster.stats()
        assert results == expected
        assert stats.recoveries >= 1
        _assert_conserved(stats)


# ----------------------------------------------------------------------
# park on shutdown, resume on a plain single engine
# ----------------------------------------------------------------------
def test_park_from_process_cluster_resumes_on_single_engine(tmp_path):
    spec = _stream_spec(seed=31, windows=60)
    unbroken = _fingerprint(_single_engine(spec))
    cluster = ClusterController(
        replicas=2, backend="process", checkpoint_dir=str(tmp_path)
    )
    session = cluster.submit(spec, checkpoint_every=1)
    _wait_for_checkpoint(str(tmp_path))
    parked = cluster.close(park=True)
    assert session.poll() == "parked"
    assert len(parked) == 1 and parked[0] == session.parked_path
    # The parked file is an ordinary RPCK checkpoint: any engine resumes it.
    with MiningService(max_inflight=2) as service:
        handle = service.resume(parked[0])
        result = handle.result(timeout=120)
    assert _fingerprint(result) == unbroken
