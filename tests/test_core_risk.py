"""Tests for the risk model (eqs. (1), (2), Figure 4 bound)."""

import pytest

from repro.core.risk import (
    PartyRiskProfile,
    mean_satisfaction,
    minimum_parties,
    optimality_rate,
    risk_of_breach,
    sap_risk,
    satisfaction_level,
    source_identifiability,
    standalone_risk,
)


class TestIdentifiability:
    def test_formula(self):
        assert source_identifiability(5) == pytest.approx(0.25)
        assert source_identifiability(2) == 1.0

    def test_decreases_with_k(self):
        values = [source_identifiability(k) for k in range(2, 20)]
        assert values == sorted(values, reverse=True)

    def test_requires_two_parties(self):
        with pytest.raises(ValueError):
            source_identifiability(1)


class TestOptimalityRate:
    def test_basic(self):
        assert optimality_rate(0.45, 0.5) == pytest.approx(0.9)

    def test_clamped_at_one(self):
        assert optimality_rate(0.5, 0.5) == 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            optimality_rate(0.5, 0.0)
        with pytest.raises(ValueError):
            optimality_rate(0.6, 0.5)
        with pytest.raises(ValueError):
            optimality_rate(-0.1, 0.5)


class TestSatisfaction:
    def test_basic(self):
        assert satisfaction_level(0.4, 0.5) == pytest.approx(0.8)

    def test_above_one_preserved(self):
        assert satisfaction_level(0.6, 0.5) == pytest.approx(1.2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            satisfaction_level(0.4, 0.0)
        with pytest.raises(ValueError):
            satisfaction_level(-0.1, 0.5)


class TestEquationOne:
    def test_matches_formula(self):
        # pi * (1 - s * rho / b)
        assert risk_of_breach(0.25, 0.9, 0.4, 0.5) == pytest.approx(
            0.25 * (1 - 0.9 * 0.4 / 0.5)
        )

    def test_zero_identifiability_means_zero_risk(self):
        assert risk_of_breach(0.0, 0.5, 0.3, 0.5) == 0.0

    def test_full_satisfaction_at_bound_means_zero_risk(self):
        assert risk_of_breach(1.0, 1.0, 0.5, 0.5) == 0.0

    def test_clamped_at_zero(self):
        assert risk_of_breach(0.5, 2.0, 0.5, 0.5) == 0.0

    def test_monotone_decreasing_in_satisfaction(self):
        risks = [risk_of_breach(0.5, s, 0.4, 0.5) for s in (0.0, 0.5, 1.0)]
        assert risks == sorted(risks, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            risk_of_breach(1.5, 1.0, 0.4, 0.5)
        with pytest.raises(ValueError):
            risk_of_breach(0.5, 1.0, 0.4, 0.0)
        with pytest.raises(ValueError):
            risk_of_breach(0.5, -1.0, 0.4, 0.5)


class TestEquationTwo:
    def test_matches_formula(self):
        b, rho, s, k = 0.5, 0.4, 0.9, 5
        expected = max((b - rho) / b, (b - s * rho) / b / (k - 1))
        assert sap_risk(b, rho, s, k) == pytest.approx(expected)

    def test_provider_view_dominates_for_large_k(self):
        # As k grows, the miner-side term vanishes and the provider-side
        # term (b - rho)/b remains.
        assert sap_risk(0.5, 0.4, 0.9, 1000) == pytest.approx(0.2, abs=1e-3)

    def test_miner_view_dominates_for_k2_and_low_satisfaction(self):
        b, rho, s, k = 0.5, 0.45, 0.2, 2
        assert sap_risk(b, rho, s, k) == pytest.approx((b - s * rho) / b)

    def test_non_increasing_in_k(self):
        risks = [sap_risk(0.5, 0.4, 0.9, k) for k in range(2, 30)]
        assert risks == sorted(risks, reverse=True)

    def test_standalone_risk(self):
        assert standalone_risk(0.4, 0.5) == pytest.approx(0.2)


class TestMinimumParties:
    def test_increases_with_satisfaction(self):
        values = [minimum_parties(s0, 0.9) for s0 in (0.90, 0.95, 0.99)]
        assert values == sorted(values)

    def test_lower_opt_rate_needs_more_parties(self):
        assert minimum_parties(0.98, 0.89) >= minimum_parties(0.98, 0.98)

    def test_figure4_reference_points(self):
        # Shuttle (O=0.89) at s0=0.99 needs ~13 parties; Votes (O=0.98) ~4.
        assert minimum_parties(0.99, 0.89) == 13
        assert minimum_parties(0.99, 0.98) == 4
        assert minimum_parties(0.99, 0.95) == 7

    def test_diverges_near_one(self):
        assert minimum_parties(0.999, 0.89) > 50

    def test_at_least_two(self):
        assert minimum_parties(0.0, 1.0) == 2

    def test_cap_applies(self):
        assert minimum_parties(0.9999, 0.5, k_cap=100) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_parties(1.0, 0.9)
        with pytest.raises(ValueError):
            minimum_parties(0.9, 0.0)
        with pytest.raises(ValueError):
            minimum_parties(-0.1, 0.9)
        with pytest.raises(ValueError):
            minimum_parties(0.9, 1.1)


class TestPartyRiskProfile:
    def make(self, **overrides):
        base = dict(party="DP0", rho_local=0.4, rho_global=0.36, b=0.5, k=5)
        base.update(overrides)
        return PartyRiskProfile(**base)

    def test_derived_quantities(self):
        profile = self.make()
        assert profile.satisfaction == pytest.approx(0.9)
        assert profile.identifiability == pytest.approx(0.25)
        assert profile.breach_risk == pytest.approx(
            0.25 * (1 - 0.9 * 0.4 / 0.5)
        )
        assert profile.overall_risk == pytest.approx(
            max(0.2, (0.5 - 0.36) / 0.5 / 4)
        )

    def test_summary_contains_party(self):
        assert "DP0" in self.make().summary()

    def test_mean_satisfaction(self):
        profiles = [self.make(), self.make(rho_global=0.44)]
        assert mean_satisfaction(profiles) == pytest.approx((0.9 + 1.1) / 2)

    def test_mean_satisfaction_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_satisfaction([])
