"""Tests for space adaptors — the paper's Section 3 identities."""

import numpy as np
import pytest

from repro.core.adaptation import SpaceAdaptor, complementary_noise, compute_adaptor
from repro.core.perturbation import sample_perturbation
from repro.core.rotation import haar_orthogonal, is_orthogonal


@pytest.fixture
def source(rng):
    return sample_perturbation(5, rng, noise_sigma=0.08)


@pytest.fixture
def target(rng):
    return sample_perturbation(5, rng, noise_sigma=0.0)


@pytest.fixture
def X(rng):
    return rng.uniform(0, 1, size=(5, 40))


class TestAdaptorAlgebra:
    def test_rotation_adaptor_is_product(self, source, target):
        adaptor = compute_adaptor(source, target)
        np.testing.assert_allclose(
            adaptor.rotation_adaptor, target.rotation @ source.rotation.T
        )

    def test_rotation_adaptor_is_orthogonal(self, source, target):
        adaptor = compute_adaptor(source, target)
        assert is_orthogonal(adaptor.rotation_adaptor)

    def test_paper_identity_clean(self, source, target, X):
        """Y_{i->t} = R_t X + Psi_t when the source had no noise."""
        clean_source = source.without_noise()
        Y = np.asarray(clean_source.apply(X))
        adapted = compute_adaptor(clean_source, target).apply(Y)
        np.testing.assert_allclose(
            adapted, target.transform_clean(X), atol=1e-10
        )

    def test_paper_identity_with_complementary_noise(self, source, target, X, rng):
        """Y_{i->t} = R_t X + Psi_t + R_t R_i^{-1} Delta_i with noise."""
        Y, noise = source.apply(X, rng=rng, return_noise=True)
        adapted = compute_adaptor(source, target).apply(np.asarray(Y))
        expected = target.transform_clean(X) + complementary_noise(
            source, target, noise
        )
        np.testing.assert_allclose(adapted, expected, atol=1e-10)

    def test_complementary_noise_preserves_magnitude(self, source, target, rng):
        """Rotating the noise must not amplify it (orthogonal invariance)."""
        noise = rng.normal(scale=0.1, size=(5, 200))
        rotated = complementary_noise(source, target, noise)
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(noise))

    def test_self_adaptation_is_identity(self, source, X, rng):
        adaptor = compute_adaptor(source, source)
        np.testing.assert_allclose(adaptor.rotation_adaptor, np.eye(5), atol=1e-10)
        np.testing.assert_allclose(adaptor.translation_adaptor, 0.0, atol=1e-10)
        Y = source.transform_clean(X)
        np.testing.assert_allclose(adaptor.apply(Y), Y, atol=1e-10)

    def test_adaptation_composes(self, rng, X):
        """Adapting A->B then B->C equals adapting A->C."""
        a = sample_perturbation(5, rng)
        b = sample_perturbation(5, rng)
        c = sample_perturbation(5, rng)
        Y = a.transform_clean(X)
        via_b = compute_adaptor(b, c).apply(compute_adaptor(a, b).apply(Y))
        direct = compute_adaptor(a, c).apply(Y)
        np.testing.assert_allclose(via_b, direct, atol=1e-9)

    def test_adaptor_hides_individual_rotations(self, rng):
        """Distinct (source, target) pairs can produce the same adaptor, so
        the adaptor alone cannot identify either rotation."""
        blinding = haar_orthogonal(5, rng)
        source_a = sample_perturbation(5, rng)
        target_a = sample_perturbation(5, rng)
        # Rotate both by the same blinding matrix on the right: the adaptor
        # R_t R_i^{-1} is unchanged.
        source_b = source_a.with_rotation(source_a.rotation @ blinding)
        target_b = target_a.with_rotation(target_a.rotation @ blinding)
        adaptor_a = compute_adaptor(source_a, target_a)
        adaptor_b = compute_adaptor(source_b, target_b)
        np.testing.assert_allclose(
            adaptor_a.rotation_adaptor, adaptor_b.rotation_adaptor, atol=1e-10
        )


class TestValidation:
    def test_dimension_mismatch_rejected(self, rng):
        a = sample_perturbation(3, rng)
        b = sample_perturbation(4, rng)
        with pytest.raises(ValueError):
            compute_adaptor(a, b)

    def test_non_orthogonal_adaptor_rejected(self):
        with pytest.raises(ValueError):
            SpaceAdaptor(
                rotation_adaptor=np.ones((3, 3)),
                translation_adaptor=np.zeros(3),
            )

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            SpaceAdaptor(
                rotation_adaptor=haar_orthogonal(3, rng),
                translation_adaptor=np.zeros(4),
            )

    def test_apply_checks_orientation(self, source, target, rng):
        adaptor = compute_adaptor(source, target)
        with pytest.raises(ValueError):
            adaptor.apply(rng.normal(size=(4, 10)))

    def test_complementary_noise_shape_checked(self, source, target):
        with pytest.raises(ValueError):
            complementary_noise(source, target, np.zeros((3, 10)))


class TestAdaptorCache:
    """LRU adaptor cache keyed by (target_id, party_id)."""

    def _adaptor(self, rng, d=5):
        return compute_adaptor(
            sample_perturbation(d, rng, noise_sigma=0.05),
            sample_perturbation(d, rng, noise_sigma=0.0),
        )

    def test_get_or_compute_caches_and_counts(self, rng):
        from repro.core.adaptation import AdaptorCache

        cache = AdaptorCache(maxsize=8)
        calls = []

        def factory():
            calls.append(1)
            return self._adaptor(rng)

        first = cache.get_or_compute("epoch-1", 0, factory)
        second = cache.get_or_compute("epoch-1", 0, factory)
        assert first is second  # repeat lookups skip re-derivation
        assert len(calls) == 1
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_lru_bound_evicts_oldest(self, rng):
        from repro.core.adaptation import AdaptorCache

        cache = AdaptorCache(maxsize=2)
        a, b, c = (self._adaptor(rng) for _ in range(3))
        cache.put(1, 0, a)
        cache.put(1, 1, b)
        assert cache.get(1, 0) is a  # refreshes (1, 0)
        cache.put(1, 2, c)  # evicts (1, 1), the least recently used
        assert cache.get(1, 1) is None
        assert cache.get(1, 0) is a and cache.get(1, 2) is c
        assert len(cache) == 2

    def test_invalidate_is_the_renegotiation_hook(self, rng):
        from repro.core.adaptation import AdaptorCache

        cache = AdaptorCache(maxsize=16)
        for epoch in (1, 2):
            for party in range(3):
                cache.put(epoch, party, self._adaptor(rng))
        # Re-negotiation: every adaptor of the stale target goes at once.
        assert cache.invalidate(target_id=1) == 3
        assert all(cache.get(1, party) is None for party in range(3))
        assert all(cache.get(2, party) is not None for party in range(3))
        # A single party can be dropped across targets too.
        assert cache.invalidate(party_id=0) == 1
        assert cache.invalidate() == 2  # clears the rest
        assert len(cache) == 0

    def test_maxsize_validated(self):
        from repro.core.adaptation import AdaptorCache

        with pytest.raises(ValueError):
            AdaptorCache(maxsize=0)

    def test_stream_session_reuses_cached_adaptors(self):
        """End to end: a multi-epoch stream run hits the cache instead of
        re-deriving per-party adaptors every window."""
        from unittest.mock import patch

        from repro.streaming import StreamConfig, make_stream, run_stream_session
        from repro.streaming import stream_session as session_module

        # shards=3 puts the drift re-negotiation (window 4) mid-round
        # (round = windows 3-5), exercising the deferred invalidation.
        for shards in (1, 3):
            source = make_stream("iris", kind="abrupt", n_records=8 * 32, seed=0)
            config = StreamConfig(
                k=3, window_size=32, compute_privacy=False, seed=0,
                shards=shards,
            )
            with patch.object(
                session_module, "compute_adaptor", wraps=compute_adaptor
            ) as spy:
                result = run_stream_session(source, config)
            # Derivations: k per negotiation (inside the protocol roles)
            # plus one migration adaptor per re-negotiation.  Every *window*
            # consults the cache instead — with 8 windows and cold caches
            # this count would exceed the bound, and so would invalidating
            # the replaced epoch before the round's stacks are built.
            epochs = len(result.events)
            assert epochs >= 2  # abrupt drift re-negotiates at least once
            assert spy.call_count == 3 * epochs + (epochs - 1)
            assert len(result.windows) == 8
