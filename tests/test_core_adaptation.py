"""Tests for space adaptors — the paper's Section 3 identities."""

import numpy as np
import pytest

from repro.core.adaptation import SpaceAdaptor, complementary_noise, compute_adaptor
from repro.core.perturbation import sample_perturbation
from repro.core.rotation import haar_orthogonal, is_orthogonal


@pytest.fixture
def source(rng):
    return sample_perturbation(5, rng, noise_sigma=0.08)


@pytest.fixture
def target(rng):
    return sample_perturbation(5, rng, noise_sigma=0.0)


@pytest.fixture
def X(rng):
    return rng.uniform(0, 1, size=(5, 40))


class TestAdaptorAlgebra:
    def test_rotation_adaptor_is_product(self, source, target):
        adaptor = compute_adaptor(source, target)
        np.testing.assert_allclose(
            adaptor.rotation_adaptor, target.rotation @ source.rotation.T
        )

    def test_rotation_adaptor_is_orthogonal(self, source, target):
        adaptor = compute_adaptor(source, target)
        assert is_orthogonal(adaptor.rotation_adaptor)

    def test_paper_identity_clean(self, source, target, X):
        """Y_{i->t} = R_t X + Psi_t when the source had no noise."""
        clean_source = source.without_noise()
        Y = np.asarray(clean_source.apply(X))
        adapted = compute_adaptor(clean_source, target).apply(Y)
        np.testing.assert_allclose(
            adapted, target.transform_clean(X), atol=1e-10
        )

    def test_paper_identity_with_complementary_noise(self, source, target, X, rng):
        """Y_{i->t} = R_t X + Psi_t + R_t R_i^{-1} Delta_i with noise."""
        Y, noise = source.apply(X, rng=rng, return_noise=True)
        adapted = compute_adaptor(source, target).apply(np.asarray(Y))
        expected = target.transform_clean(X) + complementary_noise(
            source, target, noise
        )
        np.testing.assert_allclose(adapted, expected, atol=1e-10)

    def test_complementary_noise_preserves_magnitude(self, source, target, rng):
        """Rotating the noise must not amplify it (orthogonal invariance)."""
        noise = rng.normal(scale=0.1, size=(5, 200))
        rotated = complementary_noise(source, target, noise)
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(noise))

    def test_self_adaptation_is_identity(self, source, X, rng):
        adaptor = compute_adaptor(source, source)
        np.testing.assert_allclose(adaptor.rotation_adaptor, np.eye(5), atol=1e-10)
        np.testing.assert_allclose(adaptor.translation_adaptor, 0.0, atol=1e-10)
        Y = source.transform_clean(X)
        np.testing.assert_allclose(adaptor.apply(Y), Y, atol=1e-10)

    def test_adaptation_composes(self, rng, X):
        """Adapting A->B then B->C equals adapting A->C."""
        a = sample_perturbation(5, rng)
        b = sample_perturbation(5, rng)
        c = sample_perturbation(5, rng)
        Y = a.transform_clean(X)
        via_b = compute_adaptor(b, c).apply(compute_adaptor(a, b).apply(Y))
        direct = compute_adaptor(a, c).apply(Y)
        np.testing.assert_allclose(via_b, direct, atol=1e-9)

    def test_adaptor_hides_individual_rotations(self, rng):
        """Distinct (source, target) pairs can produce the same adaptor, so
        the adaptor alone cannot identify either rotation."""
        blinding = haar_orthogonal(5, rng)
        source_a = sample_perturbation(5, rng)
        target_a = sample_perturbation(5, rng)
        # Rotate both by the same blinding matrix on the right: the adaptor
        # R_t R_i^{-1} is unchanged.
        source_b = source_a.with_rotation(source_a.rotation @ blinding)
        target_b = target_a.with_rotation(target_a.rotation @ blinding)
        adaptor_a = compute_adaptor(source_a, target_a)
        adaptor_b = compute_adaptor(source_b, target_b)
        np.testing.assert_allclose(
            adaptor_a.rotation_adaptor, adaptor_b.rotation_adaptor, atol=1e-10
        )


class TestValidation:
    def test_dimension_mismatch_rejected(self, rng):
        a = sample_perturbation(3, rng)
        b = sample_perturbation(4, rng)
        with pytest.raises(ValueError):
            compute_adaptor(a, b)

    def test_non_orthogonal_adaptor_rejected(self):
        with pytest.raises(ValueError):
            SpaceAdaptor(
                rotation_adaptor=np.ones((3, 3)),
                translation_adaptor=np.zeros(3),
            )

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            SpaceAdaptor(
                rotation_adaptor=haar_orthogonal(3, rng),
                translation_adaptor=np.zeros(4),
            )

    def test_apply_checks_orientation(self, source, target, rng):
        adaptor = compute_adaptor(source, target)
        with pytest.raises(ValueError):
            adaptor.apply(rng.normal(size=(4, 10)))

    def test_complementary_noise_shape_checked(self, source, target):
        with pytest.raises(ValueError):
            complementary_noise(source, target, np.zeros((3, 10)))
