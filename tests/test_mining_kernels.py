"""Tests for kernel functions."""

import numpy as np
import pytest

from repro.mining.kernels import (
    linear_kernel,
    pairwise_sq_distances,
    polynomial_kernel,
    rbf_kernel,
    resolve_gamma,
)


@pytest.fixture
def X(rng):
    return rng.normal(size=(10, 4))


@pytest.fixture
def Z(rng):
    return rng.normal(size=(6, 4))


class TestPairwiseDistances:
    def test_matches_naive_computation(self, X, Z):
        sq = pairwise_sq_distances(X, Z)
        for i in range(len(X)):
            for j in range(len(Z)):
                expected = np.sum((X[i] - Z[j]) ** 2)
                assert sq[i, j] == pytest.approx(expected)

    def test_self_distances_zero_diagonal(self, X):
        sq = pairwise_sq_distances(X, X)
        np.testing.assert_allclose(np.diag(sq), 0.0, atol=1e-9)

    def test_never_negative(self, rng):
        X = rng.normal(size=(50, 3)) * 1e-8  # cancellation-prone scale
        sq = pairwise_sq_distances(X, X)
        assert (sq >= 0).all()


class TestRBF:
    def test_range_and_diagonal(self, X):
        K = rbf_kernel(X, X, gamma=0.5)
        assert (K > 0).all() and (K <= 1).all()
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetry(self, X):
        K = rbf_kernel(X, X, gamma=1.0)
        np.testing.assert_allclose(K, K.T)

    def test_positive_semidefinite(self, X):
        K = rbf_kernel(X, X, gamma=1.0)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-10

    def test_gamma_controls_locality(self, X, Z):
        near = rbf_kernel(X, Z, gamma=0.1)
        far = rbf_kernel(X, Z, gamma=10.0)
        assert far.mean() < near.mean()

    def test_invalid_gamma(self, X):
        with pytest.raises(ValueError):
            rbf_kernel(X, X, gamma=0.0)


class TestLinearAndPoly:
    def test_linear_matches_dot(self, X, Z):
        np.testing.assert_allclose(linear_kernel(X, Z), X @ Z.T)

    def test_poly_degree_one_is_shifted_linear(self, X, Z):
        np.testing.assert_allclose(
            polynomial_kernel(X, Z, degree=1, coef0=0.0), X @ Z.T
        )

    def test_poly_invalid_degree(self, X):
        with pytest.raises(ValueError):
            polynomial_kernel(X, X, degree=0)


class TestResolveGamma:
    def test_float_passthrough(self, X):
        assert resolve_gamma(2.5, X) == 2.5

    def test_scale_heuristic_uses_mean_column_variance(self, X):
        expected = 1.0 / (X.shape[1] * X.var(axis=0).mean())
        assert resolve_gamma("scale", X) == pytest.approx(expected)

    def test_auto_heuristic(self, X):
        assert resolve_gamma("auto", X) == pytest.approx(1.0 / X.shape[1])

    def test_constant_data_does_not_blow_up(self):
        X = np.ones((5, 3))
        assert resolve_gamma("scale", X) == pytest.approx(1.0 / 3)

    def test_invalid_specs(self, X):
        with pytest.raises(ValueError):
            resolve_gamma("bananas", X)
        with pytest.raises(ValueError):
            resolve_gamma(-1.0, X)
