"""Tests for the protocol trace renderer."""

import pytest

from repro.core.session import run_sap_session
from repro.parties.config import ClassifierSpec, SAPConfig
from repro.simnet.adversary import ObservationLedger
from repro.simnet.messages import Message, MessageKind
from repro.simnet.trace import message_flow_summary, render_trace


@pytest.fixture
def ledger(small_dataset):
    config = SAPConfig(k=3, classifier=ClassifierSpec("knn"), seed=4)
    result = run_sap_session(small_dataset, config, keep_network=True)
    return result.network.ledger


def test_render_trace_lists_every_delivery(ledger):
    text = render_trace(ledger)
    assert text.count("\n") + 1 == len(ledger.endpoint)
    assert "target_params" in text
    assert "forwarded_dataset" in text


def test_render_trace_is_time_ordered(ledger):
    lines = render_trace(ledger).splitlines()
    times = [float(line.split("ms")[0].split("=")[1]) for line in lines]
    assert times == sorted(times)


def test_render_trace_kind_filter(ledger):
    text = render_trace(ledger, kinds=[MessageKind.SPACE_ADAPTOR])
    assert "space_adaptor" in text
    assert "forwarded_dataset" not in text


def test_render_trace_truncation(ledger):
    text = render_trace(ledger, max_messages=3)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[-1].startswith("...")


def test_render_trace_sizes_toggle(ledger):
    with_sizes = render_trace(ledger, max_messages=2)
    without = render_trace(ledger, max_messages=2, show_sizes=False)
    assert " B)" in with_sizes
    assert " B)" not in without


def test_render_trace_empty_ledger():
    assert render_trace(ObservationLedger()) == "(no messages)"


def test_flow_summary_collapses_roles(ledger):
    text = message_flow_summary(ledger)
    assert "provider" in text
    assert "provider-0" not in text
    assert "x" in text  # counts rendered


def _summary_counts(text):
    """Parse ``x{count}`` from every flow line (section headers skipped)."""
    return [
        int(line.split("x")[-1].split()[0])
        for line in text.splitlines()
        if " x" in line
    ]


def test_flow_summary_counts_are_complete(ledger):
    text = message_flow_summary(ledger)
    assert sum(_summary_counts(text)) == len(ledger.endpoint)


def test_flow_summary_has_byte_totals(ledger):
    from repro.simnet.messages import payload_nbytes

    text = message_flow_summary(ledger)
    expected = sum(payload_nbytes(o.message.payload) for o in ledger.endpoint)
    totals = [
        int(line.rsplit("x", 1)[-1].split()[1].replace("_", ""))
        for line in text.splitlines()
        if line.endswith(" B")
    ]
    assert sum(totals) == expected


def test_flow_summary_empty():
    assert message_flow_summary(ObservationLedger()) == "(no messages)"


@pytest.fixture
def shard_ledger():
    """A ledger carrying shard data-plane traffic (party routing plan)."""
    import numpy as np

    from repro.sharding.engine import DataPlane
    from repro.sharding.plan import ShardPlan

    plan = ShardPlan(2, "party", n_parties=3)
    plane = DataPlane(plan, ["provider-0", "provider-1", "coordinator"], seed=1)
    rows = np.arange(12.0).reshape(6, 2)
    parties = np.arange(6) % 3
    slices = [rows[parties == party] for party in range(3)]
    plane.route_window(0, slices, rows)
    plane.flush()
    return plane.network.ledger


def test_flow_summary_breaks_out_shard_traffic(shard_ledger):
    text = message_flow_summary(shard_ledger)
    assert "shard data plane:" in text
    assert "shard_batch" in text
    assert "shard_result" in text
    # shard-N names collapse to the role, like provider-N does
    assert "shard-0" not in text
    assert sum(_summary_counts(text)) == len(shard_ledger.endpoint)


def test_flow_summary_without_shard_traffic_has_no_sections(ledger):
    text = message_flow_summary(ledger)
    assert "shard data plane:" not in text
    assert "protocol control plane:" not in text
