"""Tests for the protocol trace renderer."""

import pytest

from repro.core.session import run_sap_session
from repro.parties.config import ClassifierSpec, SAPConfig
from repro.simnet.adversary import ObservationLedger
from repro.simnet.messages import Message, MessageKind
from repro.simnet.trace import message_flow_summary, render_trace


@pytest.fixture
def ledger(small_dataset):
    config = SAPConfig(k=3, classifier=ClassifierSpec("knn"), seed=4)
    result = run_sap_session(small_dataset, config, keep_network=True)
    return result.network.ledger


def test_render_trace_lists_every_delivery(ledger):
    text = render_trace(ledger)
    assert text.count("\n") + 1 == len(ledger.endpoint)
    assert "target_params" in text
    assert "forwarded_dataset" in text


def test_render_trace_is_time_ordered(ledger):
    lines = render_trace(ledger).splitlines()
    times = [float(line.split("ms")[0].split("=")[1]) for line in lines]
    assert times == sorted(times)


def test_render_trace_kind_filter(ledger):
    text = render_trace(ledger, kinds=[MessageKind.SPACE_ADAPTOR])
    assert "space_adaptor" in text
    assert "forwarded_dataset" not in text


def test_render_trace_truncation(ledger):
    text = render_trace(ledger, max_messages=3)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[-1].startswith("...")


def test_render_trace_sizes_toggle(ledger):
    with_sizes = render_trace(ledger, max_messages=2)
    without = render_trace(ledger, max_messages=2, show_sizes=False)
    assert " B)" in with_sizes
    assert " B)" not in without


def test_render_trace_empty_ledger():
    assert render_trace(ObservationLedger()) == "(no messages)"


def test_flow_summary_collapses_roles(ledger):
    text = message_flow_summary(ledger)
    assert "provider" in text
    assert "provider-0" not in text
    assert "x" in text  # counts rendered


def test_flow_summary_counts_are_complete(ledger):
    text = message_flow_summary(ledger)
    total = sum(int(part.split("x")[-1]) for part in text.splitlines())
    assert total == len(ledger.endpoint)


def test_flow_summary_empty():
    assert message_flow_summary(ObservationLedger()) == "(no messages)"
