"""Telemetry wiring: bit-identity with telemetry on/off/absent, span
nesting invariants under the pipelined driver, and serve-layer spans.

The contract: telemetry *reads* state, never draws randomness and never
reorders work, so a session's fingerprint is identical whether telemetry
is absent, disabled, or fully recording — across dispatch backends.  Span
ordering under ``overlap=True`` is a *partial* order: each round's stages
open in pipeline order, but round N+1's dispatch may open before round
N's settle closes, so the tests pin per-round ordering only.
"""

import json

import pytest

from repro.obs import Telemetry
from repro.serve import MiningService, SessionSpec
from repro.streaming import StreamConfig, make_stream, run_stream_session


def _fingerprint(result):
    """The deterministic core of a stream result (see test_stream_overlap)."""
    return {
        "records": result.records_processed,
        "windows": [
            (w.index, w.revision, w.n_records, w.accuracy_perturbed)
            for w in result.windows
        ],
        "events": [(e.window, e.reason, e.messages, e.bytes) for e in result.events],
        "accuracy": (result.accuracy_perturbed, result.accuracy_baseline),
        "traffic": (result.messages_sent, result.bytes_sent,
                    result.data_messages_sent, result.data_bytes_sent),
        "ingest": None if result.ingest is None else result.ingest.to_dict(),
    }


def _run(telemetry=None, **knobs):
    source = make_stream("iris", kind="abrupt", n_records=6 * 32, seed=3)
    config = StreamConfig(
        k=3, window_size=32, compute_privacy=False, seed=7,
        telemetry=telemetry, **knobs,
    )
    return run_stream_session(source, config)


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_fingerprints_identical_with_telemetry_on_off_absent(backend):
    knobs = dict(shards=4, shard_backend=backend)
    absent = _fingerprint(_run(**knobs))
    disabled = _fingerprint(_run(telemetry=Telemetry.disabled(), **knobs))
    recording = _fingerprint(_run(telemetry=Telemetry.in_memory(), **knobs))
    assert disabled == absent
    assert recording == absent


@pytest.fixture(scope="module")
def overlap_telemetry():
    """One recorded overlap run: (telemetry bundle, spans, result)."""
    tel = Telemetry.in_memory()
    result = _run(telemetry=tel, shards=4, shard_backend="thread", overlap=True)
    tel.close()
    return tel, tel.tracer.sink.spans, result


def test_overlap_spans_cover_the_stage_taxonomy(overlap_telemetry):
    _, spans, result = overlap_telemetry
    assert result.overlap is True
    names = {span["name"] for span in spans}
    assert {"session", "round", "control", "dispatch",
            "settle", "merge", "seal"} <= names
    assert all(span["duration"] is not None for span in spans)


def test_overlap_spans_nest_under_session_and_rounds(overlap_telemetry):
    _, spans, _ = overlap_telemetry
    (session,) = [s for s in spans if s["name"] == "session"]
    assert session["parent_id"] is None
    rounds = [s for s in spans if s["name"] == "round"]
    assert rounds, "no round spans recorded"
    round_ids = sorted(s["attrs"]["round"] for s in rounds)
    assert round_ids == list(range(len(rounds)))  # dense, zero-based
    by_round = {s["attrs"]["round"]: s for s in rounds}
    for span in rounds:
        assert span["parent_id"] == session["span_id"]
    for span in spans:
        if span["name"] in ("control", "dispatch", "settle", "merge"):
            parent = by_round[span["attrs"]["round"]]
            assert span["parent_id"] == parent["span_id"]
        elif span["name"] in ("seal", "renegotiate"):
            assert span["parent_id"] == session["span_id"]


def test_overlap_stages_open_in_pipeline_order_per_round(overlap_telemetry):
    _, spans, _ = overlap_telemetry
    # Span ids are handed out at open time, so per-round monotone ids
    # pin the open order without trusting wall clocks.
    opened = {}
    for span in spans:
        if span["name"] in ("round", "control", "dispatch", "settle", "merge"):
            opened.setdefault(span["attrs"]["round"], {})[span["name"]] = (
                span["span_id"]
            )
    assert opened
    for stages in opened.values():
        order = [stages[name] for name in
                 ("round", "control", "dispatch", "settle", "merge")]
        assert order == sorted(order)


def test_overlap_seal_spans_carry_watermark_attrs(overlap_telemetry):
    _, spans, result = overlap_telemetry
    seals = [s for s in spans if s["name"] == "seal"]
    assert len(seals) == len(result.windows)
    for seal in seals:
        assert seal["attrs"]["watermark_lag"] >= 0
        assert seal["attrs"]["rows"] > 0
    assert sorted(s["attrs"]["window"] for s in seals) == [
        w.index for w in result.windows
    ]


def test_stream_metrics_counters(overlap_telemetry):
    tel, _, result = overlap_telemetry
    snap = tel.metrics.snapshot()
    assert snap["repro_stream_records_total"]["values"][""] == (
        result.records_processed
    )
    assert snap["repro_stream_windows_total"]["values"][""] == len(result.windows)
    assert snap["repro_stream_rounds_total"]["values"][""] >= 1
    assert snap["repro_ingest_windows_sealed_total"]["values"][""] == len(
        result.windows
    )
    assert snap["repro_sessions_total"]["values"]['{kind="stream"}'] == 1
    negotiation = snap["repro_stream_negotiation_seconds"]["values"][""]
    assert negotiation["count"] == len(result.events)


def test_config_rejects_non_telemetry_values():
    with pytest.raises(ValueError, match="telemetry"):
        StreamConfig(telemetry="yes")
    with pytest.raises(ValueError, match="telemetry"):
        SessionSpec(kind="batch", dataset="wine", telemetry=object())


def _specs():
    return [
        SessionSpec(kind="batch", dataset="wine", k=3, seed=0, tenant="acme"),
        SessionSpec(
            kind="stream", dataset="wine", k=3, windows=2, window_size=32,
            compute_privacy=False, seed=1, tenant="globex",
        ),
    ]


def test_serve_telemetry_spans_and_counters():
    tel = Telemetry.in_memory()
    with MiningService(
        max_inflight=2, shard_backend="serial", telemetry=tel
    ) as service:
        results = service.run(_specs())
        stats = service.stats()
    tel.close()
    assert len(results) == 2
    spans = tel.tracer.sink.spans
    names = {span["name"] for span in spans}
    assert {"queue", "drive", "session"} <= names
    queues = [s for s in spans if s["name"] == "queue"]
    assert {s["attrs"]["outcome"] for s in queues} == {"started"}
    drives = {s["span_id"]: s for s in spans if s["name"] == "drive"}
    sessions = [s for s in spans if s["name"] == "session"]
    assert len(drives) == 2 and len(sessions) == 2
    for session in sessions:  # session spans nest under their drive span
        assert session["parent_id"] in drives
    snap = tel.metrics.snapshot()
    assert snap["repro_serve_admitted_total"]["values"][""] == 2
    assert snap["repro_sessions_total"]["values"]['{kind="batch"}'] == 1
    assert snap["repro_serve_sessions"]["values"]['{state="completed"}'] == 2
    assert stats.completed == 2


def test_service_stats_to_dict_json_round_trips():
    with MiningService(max_inflight=1, shard_backend="serial") as service:
        service.run(_specs())
        stats = service.stats()
    payload = stats.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["completed"] == 2
