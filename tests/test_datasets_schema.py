"""Tests for DatasetSpec and Dataset."""

import numpy as np
import pytest

from repro.datasets.schema import Dataset, DatasetSpec, FeatureKind


def make_spec(**overrides):
    base = dict(
        name="t",
        n_rows=50,
        n_features=3,
        n_classes=2,
        class_priors=(0.6, 0.4),
        feature_kinds=(FeatureKind.CONTINUOUS,) * 3,
    )
    base.update(overrides)
    return DatasetSpec(**base)


class TestDatasetSpec:
    def test_valid_spec_constructs(self):
        spec = make_spec()
        assert spec.n_rows == 50

    def test_priors_must_match_classes(self):
        with pytest.raises(ValueError):
            make_spec(class_priors=(1.0,))

    def test_priors_must_sum_to_one(self):
        with pytest.raises(ValueError):
            make_spec(class_priors=(0.6, 0.6))

    def test_feature_kinds_length_checked(self):
        with pytest.raises(ValueError):
            make_spec(feature_kinds=(FeatureKind.CONTINUOUS,))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            make_spec(n_classes=1, class_priors=(1.0,))

    def test_noise_dims_bounds(self):
        with pytest.raises(ValueError):
            make_spec(noise_dims=3)
        with pytest.raises(ValueError):
            make_spec(noise_dims=-1)


class TestDataset:
    def test_shapes_and_defaults(self, rng):
        X = rng.normal(size=(10, 3))
        ds = Dataset(name="d", X=X, y=np.zeros(10, dtype=int))
        assert ds.n_rows == 10
        assert ds.n_features == 3
        assert ds.feature_names == ("f0", "f1", "f2")

    def test_label_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            Dataset(name="d", X=rng.normal(size=(10, 3)), y=np.zeros(9))

    def test_one_dimensional_X_rejected(self, rng):
        with pytest.raises(ValueError):
            Dataset(name="d", X=rng.normal(size=10), y=np.zeros(10))

    def test_columns_is_transpose_copy(self, small_dataset):
        cols = small_dataset.columns()
        assert cols.shape == (small_dataset.n_features, small_dataset.n_rows)
        cols[0, 0] = 999.0
        assert small_dataset.X[0, 0] != 999.0

    def test_classes_sorted_unique(self, multiclass_dataset):
        np.testing.assert_array_equal(multiclass_dataset.classes, [0, 1, 2])

    def test_subset_copies_rows(self, small_dataset):
        sub = small_dataset.subset([0, 2, 4])
        assert sub.n_rows == 3
        sub.X[0, 0] = 123.0
        assert small_dataset.X[0, 0] != 123.0

    def test_subset_rename(self, small_dataset):
        assert small_dataset.subset([0], name="renamed").name == "renamed"

    def test_train_test_split_partitions_rows(self, small_dataset, rng):
        train, test = small_dataset.train_test_split(0.25, rng)
        assert train.n_rows + test.n_rows == small_dataset.n_rows
        assert test.n_rows == pytest.approx(small_dataset.n_rows * 0.25, abs=2)

    def test_train_test_split_is_stratified(self, small_dataset, rng):
        train, test = small_dataset.train_test_split(0.3, rng)
        for label in small_dataset.classes:
            assert (train.y == label).sum() > 0
            assert (test.y == label).sum() > 0

    def test_train_test_split_keeps_singleton_in_train(self, rng):
        X = rng.normal(size=(11, 2))
        y = np.array([0] * 10 + [1])
        ds = Dataset(name="d", X=X, y=y)
        train, test = ds.train_test_split(0.3, rng)
        assert (train.y == 1).sum() == 1
        assert (test.y == 1).sum() == 0

    def test_split_fraction_bounds(self, small_dataset, rng):
        with pytest.raises(ValueError):
            small_dataset.train_test_split(0.0, rng)
        with pytest.raises(ValueError):
            small_dataset.train_test_split(1.0, rng)
