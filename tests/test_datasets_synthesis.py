"""Tests for the Gaussian-mixture synthesizer."""

import numpy as np
import pytest

from repro.datasets.schema import DatasetSpec, FeatureKind
from repro.datasets.synthesis import class_means, sample_covariance_factor, synthesize


def make_spec(**overrides):
    base = dict(
        name="syn",
        n_rows=200,
        n_features=6,
        n_classes=3,
        class_priors=(0.5, 0.3, 0.2),
        feature_kinds=(FeatureKind.CONTINUOUS,) * 6,
        class_separation=3.0,
    )
    base.update(overrides)
    return DatasetSpec(**base)


def test_shape_matches_spec():
    ds = synthesize(make_spec(), seed=0)
    assert ds.X.shape == (200, 6)
    assert ds.y.shape == (200,)


def test_class_counts_follow_priors():
    ds = synthesize(make_spec(), seed=0)
    counts = np.bincount(ds.y)
    assert counts.tolist() == [100, 60, 40]


def test_determinism_same_seed():
    a = synthesize(make_spec(), seed=5)
    b = synthesize(make_spec(), seed=5)
    np.testing.assert_array_equal(a.X, b.X)
    np.testing.assert_array_equal(a.y, b.y)


def test_different_seeds_differ():
    a = synthesize(make_spec(), seed=5)
    b = synthesize(make_spec(), seed=6)
    assert not np.array_equal(a.X, b.X)


def test_classes_are_separated():
    """With separation 3 a nearest-centroid rule should beat chance easily."""
    ds = synthesize(make_spec(class_separation=4.0), seed=1)
    centroids = np.vstack([ds.X[ds.y == c].mean(axis=0) for c in range(3)])
    distances = np.linalg.norm(ds.X[:, None, :] - centroids[None], axis=2)
    predictions = np.argmin(distances, axis=1)
    assert (predictions == ds.y).mean() > 0.85


def test_binary_features_are_binary():
    spec = make_spec(
        feature_kinds=(FeatureKind.BINARY,) * 6,
    )
    ds = synthesize(spec, seed=2)
    assert set(np.unique(ds.X)).issubset({0.0, 1.0})


def test_integer_features_are_small_integers():
    spec = make_spec(feature_kinds=(FeatureKind.INTEGER,) * 6)
    ds = synthesize(spec, seed=3)
    assert np.allclose(ds.X, np.rint(ds.X))
    assert ds.X.min() >= 1 and ds.X.max() <= 10


def test_noise_dims_carry_no_class_signal():
    spec = make_spec(noise_dims=2, class_separation=5.0)
    ds = synthesize(spec, seed=4)
    # Noise columns are the last two: class-conditional means should differ
    # far less than on informative columns.
    def mean_gap(col):
        means = [ds.X[ds.y == c, col].mean() for c in range(3)]
        return max(means) - min(means)

    informative_gap = max(mean_gap(c) for c in range(4))
    noise_gap = max(mean_gap(c) for c in (4, 5))
    assert noise_gap < informative_gap / 2


def test_minimum_two_rows_per_class():
    spec = make_spec(
        n_rows=30,
        class_priors=(0.97, 0.02, 0.01),
    )
    ds = synthesize(spec, seed=5)
    counts = np.bincount(ds.y, minlength=3)
    assert counts.min() >= 2


class TestClassMeans:
    def test_minimum_separation_honoured(self, rng):
        means = class_means(4, 6, separation=2.5, rng=rng)
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(means[i] - means[j]) >= 2.5 - 1e-9

    def test_shape(self, rng):
        assert class_means(3, 5, 1.0, rng).shape == (3, 5)


class TestCovarianceFactor:
    def test_produces_well_conditioned_covariance(self, rng):
        factor = sample_covariance_factor(5, rng, condition=3.0)
        covariance = factor @ factor.T
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert eigenvalues.min() > 0
        assert eigenvalues.max() / eigenvalues.min() < 3.0**2 + 1e-6
