"""Tests for the uniform and class-skewed partitioners."""

import numpy as np
import pytest

from repro.datasets.partition import (
    PartitionScheme,
    describe_partition,
    partition,
    partition_by_class,
    partition_uniform,
    random_sizes,
)


class TestRandomSizes:
    def test_sizes_sum_to_total(self, rng):
        sizes = random_sizes(100, 5, rng)
        assert sizes.sum() == 100

    def test_min_size_enforced(self, rng):
        for _ in range(20):
            sizes = random_sizes(40, 8, rng, min_size=3)
            assert sizes.min() >= 3

    def test_sizes_vary(self, rng):
        sizes = random_sizes(1000, 6, rng)
        assert sizes.std() > 0  # "randomly sized" sub-datasets

    def test_infeasible_request_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sizes(5, 4, rng, min_size=2)

    def test_zero_parties_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sizes(10, 0, rng)


class TestUniformPartition:
    def test_parts_are_disjoint_and_cover(self, small_dataset, rng):
        parts = partition_uniform(small_dataset, 4, rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined, np.arange(small_dataset.n_rows))

    def test_class_mix_roughly_global(self, small_dataset, rng):
        parts = partition_uniform(small_dataset, 3, rng)
        global_fraction = (small_dataset.y == 1).mean()
        for part in parts:
            local_fraction = (small_dataset.y[part] == 1).mean()
            assert abs(local_fraction - global_fraction) < 0.35

    def test_indices_sorted_within_parts(self, small_dataset, rng):
        for part in partition_uniform(small_dataset, 3, rng):
            assert np.all(np.diff(part) > 0)


class TestClassPartition:
    def test_parts_are_disjoint_and_cover(self, multiclass_dataset, rng):
        parts = partition_by_class(multiclass_dataset, 4, rng)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(
            combined, np.arange(multiclass_dataset.n_rows)
        )

    def test_min_size_respected(self, multiclass_dataset, rng):
        parts = partition_by_class(multiclass_dataset, 5, rng, min_size=4)
        for part in parts:
            assert len(part) >= 4

    def test_skew_exceeds_uniform(self, multiclass_dataset):
        """Class partitions are measurably more skewed than uniform ones."""

        def mean_imbalance(parts):
            imbalances = []
            global_mix = np.bincount(multiclass_dataset.y, minlength=3) / len(
                multiclass_dataset.y
            )
            for part in parts:
                mix = np.bincount(
                    multiclass_dataset.y[part], minlength=3
                ) / max(len(part), 1)
                imbalances.append(np.abs(mix - global_mix).sum())
            return np.mean(imbalances)

        uniform_scores = []
        class_scores = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            uniform_scores.append(
                mean_imbalance(partition_uniform(multiclass_dataset, 4, rng))
            )
            rng = np.random.default_rng(seed)
            class_scores.append(
                mean_imbalance(partition_by_class(multiclass_dataset, 4, rng))
            )
        assert np.mean(class_scores) > np.mean(uniform_scores)

    def test_infeasible_request_rejected(self, small_dataset, rng):
        with pytest.raises(ValueError):
            partition_by_class(small_dataset, 40, rng)


class TestDispatch:
    def test_partition_by_name(self, small_dataset):
        parts = partition(small_dataset, 3, "uniform", seed=0)
        assert len(parts) == 3
        parts = partition(small_dataset, 3, "class", seed=0)
        assert len(parts) == 3

    def test_partition_by_enum(self, small_dataset):
        parts = partition(small_dataset, 3, PartitionScheme.CLASS, seed=1)
        assert len(parts) == 3

    def test_partition_requires_rng_or_seed(self, small_dataset):
        with pytest.raises(ValueError):
            partition(small_dataset, 3, "uniform")

    def test_partition_seed_reproducible(self, small_dataset):
        a = partition(small_dataset, 3, "uniform", seed=5)
        b = partition(small_dataset, 3, "uniform", seed=5)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)


def test_describe_partition_lists_all_parties(small_dataset, rng):
    parts = partition_uniform(small_dataset, 3, rng)
    text = describe_partition(small_dataset, parts)
    assert text.count("party") == 3
