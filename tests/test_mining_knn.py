"""Tests for the KNN classifier, including the rotation-invariance claim."""

import numpy as np
import pytest

from repro.core.perturbation import perturb_rows, sample_perturbation
from repro.mining.knn import KNNClassifier


class TestBasics:
    def test_fit_predict_separable(self, small_dataset):
        model = KNNClassifier(n_neighbors=3).fit(small_dataset.X, small_dataset.y)
        accuracy = model.score(small_dataset.X, small_dataset.y)
        assert accuracy > 0.9

    def test_single_neighbor_memorizes_training_data(self, small_dataset):
        model = KNNClassifier(n_neighbors=1).fit(small_dataset.X, small_dataset.y)
        predictions = model.predict(small_dataset.X)
        np.testing.assert_array_equal(predictions, small_dataset.y)

    def test_multiclass(self, multiclass_dataset):
        model = KNNClassifier(n_neighbors=5).fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.85

    def test_k_larger_than_train_set_degrades_gracefully(self, rng):
        X = rng.normal(size=(5, 2))
        y = np.array([0, 0, 0, 1, 1])
        model = KNNClassifier(n_neighbors=50).fit(X, y)
        predictions = model.predict(X)
        # With k capped at n=5, the majority class wins everywhere.
        np.testing.assert_array_equal(predictions, np.zeros(5))

    def test_distance_weighting_prefers_closer_points(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([0, 0, 1, 1, 1])
        uniform = KNNClassifier(n_neighbors=5, weights="uniform").fit(X, y)
        weighted = KNNClassifier(n_neighbors=5, weights="distance").fit(X, y)
        probe = np.array([[0.05]])
        assert uniform.predict(probe)[0] == 1  # majority of all 5
        assert weighted.predict(probe)[0] == 0  # the two nearby points win

    def test_batched_prediction_matches_unbatched(self, small_dataset):
        big = KNNClassifier(n_neighbors=3, batch_size=7).fit(
            small_dataset.X, small_dataset.y
        )
        small = KNNClassifier(n_neighbors=3, batch_size=10_000).fit(
            small_dataset.X, small_dataset.y
        )
        np.testing.assert_array_equal(
            big.predict(small_dataset.X), small.predict(small_dataset.X)
        )

    def test_string_labels_supported(self, rng):
        X = np.vstack([rng.normal(size=(10, 2)), rng.normal(size=(10, 2)) + 5])
        y = np.array(["neg"] * 10 + ["pos"] * 10)
        model = KNNClassifier(n_neighbors=3).fit(X, y)
        assert set(model.predict(X)) <= {"neg", "pos"}


class TestValidation:
    def test_predict_before_fit_raises(self, small_dataset):
        with pytest.raises(RuntimeError):
            KNNClassifier().predict(small_dataset.X)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KNNClassifier(n_neighbors=0)
        with pytest.raises(ValueError):
            KNNClassifier(weights="quadratic")

    def test_non_finite_input_rejected(self, small_dataset):
        X = small_dataset.X.copy()
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            KNNClassifier().fit(X, small_dataset.y)

    def test_label_shape_mismatch(self, small_dataset):
        with pytest.raises(ValueError):
            KNNClassifier().fit(small_dataset.X, small_dataset.y[:-1])


class TestRotationInvariance:
    """The paper's core claim for KNN: exact invariance to rotation +
    translation, graceful degradation with noise."""

    def test_exact_invariance_without_noise(self, small_dataset, rng):
        perturbation = sample_perturbation(small_dataset.n_features, rng)
        X_train_p = perturb_rows(perturbation, small_dataset.X)

        plain = KNNClassifier(n_neighbors=5).fit(small_dataset.X, small_dataset.y)
        perturbed = KNNClassifier(n_neighbors=5).fit(X_train_p, small_dataset.y)

        probes = rng.uniform(0, 1, size=(25, small_dataset.n_features))
        probes_p = perturb_rows(perturbation, probes)
        np.testing.assert_array_equal(
            plain.predict(probes), perturbed.predict(probes_p)
        )

    def test_small_noise_keeps_most_predictions(self, small_dataset, rng):
        perturbation = sample_perturbation(
            small_dataset.n_features, rng, noise_sigma=0.03
        )
        X_p = perturb_rows(perturbation, small_dataset.X, rng=rng)
        plain = KNNClassifier(n_neighbors=5).fit(small_dataset.X, small_dataset.y)
        noisy = KNNClassifier(n_neighbors=5).fit(X_p, small_dataset.y)

        probes = small_dataset.X
        probes_p = perturb_rows(perturbation, probes, rng=rng)
        agreement = np.mean(plain.predict(probes) == noisy.predict(probes_p))
        assert agreement > 0.85
