"""Tests for message payload serialization."""

import numpy as np
import pytest

from repro.simnet.errors import TransportError
from repro.simnet.messages import (
    Message,
    MessageKind,
    deserialize_payload,
    payload_nbytes,
    serialize_payload,
)


def roundtrip(payload):
    return deserialize_payload(serialize_payload(payload))


def test_scalar_types_roundtrip():
    payload = {
        "none": None,
        "flag": True,
        "other_flag": False,
        "count": 42,
        "negative": -7,
        "value": 3.5,
        "text": "hello wörld",
        "blob": b"\x00\x01\x02",
    }
    assert roundtrip(payload) == payload


def test_bool_is_not_confused_with_int():
    result = roundtrip({"flag": True, "one": 1})
    assert result["flag"] is True
    assert isinstance(result["one"], int) and result["one"] == 1


def test_nested_structures_roundtrip():
    payload = {"outer": {"inner": [1, 2, {"deep": "yes"}], "empty": []}}
    assert roundtrip(payload) == payload


def test_tuple_becomes_list():
    assert roundtrip({"t": (1, 2, 3)}) == {"t": [1, 2, 3]}


def test_float_array_roundtrip():
    array = np.linspace(0, 1, 12).reshape(3, 4)
    result = roundtrip({"a": array})
    np.testing.assert_array_equal(result["a"], array)
    assert result["a"].dtype == array.dtype


def test_int_array_roundtrip():
    array = np.arange(10, dtype=np.int64)
    result = roundtrip({"a": array})
    np.testing.assert_array_equal(result["a"], array)


def test_bool_array_roundtrip():
    array = np.array([True, False, True])
    result = roundtrip({"a": array})
    np.testing.assert_array_equal(result["a"], array)


def test_empty_array_roundtrip():
    array = np.empty((4, 0))
    result = roundtrip({"a": array})
    assert result["a"].shape == (4, 0)


def test_non_contiguous_array_roundtrip():
    array = np.arange(24).reshape(4, 6)[:, ::2]
    result = roundtrip({"a": array})
    np.testing.assert_array_equal(result["a"], array)


def test_numpy_scalars_roundtrip_as_python_scalars():
    result = roundtrip({"i": np.int32(5), "f": np.float64(2.5)})
    assert result == {"i": 5, "f": 2.5}


def test_unserializable_value_rejected():
    with pytest.raises(TransportError):
        serialize_payload({"bad": object()})


def test_non_string_dict_key_rejected():
    with pytest.raises(TransportError):
        serialize_payload({"outer": {1: "x"}})


def test_truncated_payload_rejected():
    data = serialize_payload({"x": 1})
    with pytest.raises(TransportError):
        deserialize_payload(data[:-1])


def test_trailing_bytes_rejected():
    data = serialize_payload({"x": 1})
    with pytest.raises(TransportError):
        deserialize_payload(data + b"!")


def test_top_level_must_be_dict():
    import io

    from repro.simnet.messages import _write_value

    out = io.BytesIO()
    _write_value(out, [1, 2])
    with pytest.raises(TransportError):
        deserialize_payload(out.getvalue())


def test_payload_nbytes_matches_serialized_length():
    payload = {"a": np.zeros((5, 5)), "b": "text"}
    assert payload_nbytes(payload) == len(serialize_payload(payload))


def test_message_describe_mentions_kind_and_endpoints():
    message = Message(
        kind=MessageKind.SPACE_ADAPTOR,
        sender="provider-1",
        recipient="coordinator",
        payload={"tag": "abc"},
        msg_id=3,
    )
    text = message.describe()
    assert "space_adaptor" in text
    assert "provider-1" in text and "coordinator" in text


def test_dict_key_order_does_not_change_encoding():
    a = serialize_payload({"x": 1, "y": 2})
    b = serialize_payload({"y": 2, "x": 1})
    assert a == b
