"""Quality gates on the public API surface.

Two checks a downstream user implicitly relies on:

1. everything README/docs name is importable from the top level;
2. every public module, class, and function carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

TOP_LEVEL_API = [
    # core
    "GeometricPerturbation", "sample_perturbation", "MinMaxNormalizer",
    "ZScoreNormalizer", "haar_orthogonal", "column_privacy",
    "minimum_privacy_guarantee", "PrivacyReport", "PerturbationOptimizer",
    "OptimizationResult", "SpaceAdaptor", "compute_adaptor",
    "complementary_noise", "ExchangePlan", "draw_exchange_plan",
    "source_identifiability", "optimality_rate", "satisfaction_level",
    "risk_of_breach", "standalone_risk", "sap_risk", "minimum_parties",
    "PartyRiskProfile", "SAPSessionResult", "run_sap_session",
    # attacks
    "AttackSuite", "NaiveEstimationAttack", "ICAAttack", "KnownSampleAttack",
    "DistanceInferenceAttack", "default_suite", "fast_suite",
    "evaluate_perturbation",
    # datasets
    "Dataset", "DatasetSpec", "DATASET_NAMES", "load_dataset", "partition",
    "PartitionScheme",
    # mining
    "KNNClassifier", "SVMClassifier", "LinearSVMClassifier",
    "accuracy_score", "accuracy_deviation",
    # parties
    "SAPConfig", "ClassifierSpec",
]


@pytest.mark.parametrize("name", TOP_LEVEL_API)
def test_top_level_name_importable(name):
    assert hasattr(repro, name), f"repro.{name} missing from the public API"


def test_version_is_exposed():
    assert repro.__version__


def _public_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" not in module_info.name:
            yield module_info.name


@pytest.mark.parametrize("module_name", sorted(_public_modules()))
def test_every_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", sorted(_public_modules()))
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert inspect.getdoc(item), f"{module_name}.{name} lacks a docstring"
            if inspect.isclass(item):
                for method_name, method in vars(item).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method):
                        assert inspect.getdoc(method), (
                            f"{module_name}.{name}.{method_name} lacks a docstring"
                        )


def test_quickstart_docstring_example_runs():
    """The module docstring promises a working quickstart; hold it to it."""
    from repro import SAPConfig, load_dataset, run_sap_session

    result = run_sap_session(load_dataset("iris"), SAPConfig(k=5, seed=7))
    assert -10 < result.deviation < 10
