"""Sharded stream sessions: bit-identical results, complete accounting."""

import numpy as np
import pytest

from repro import SAPConfig, load_dataset, run_sap_session
from repro.streaming import StreamConfig, make_stream, run_stream_session

N_WINDOWS = 8
WINDOW = 32


def run(shards=1, backend="serial", plan="round_robin", kind="abrupt", **overrides):
    source = make_stream(
        "iris", kind=kind, n_records=N_WINDOWS * WINDOW, seed=0
    )
    config = StreamConfig(
        k=3,
        window_size=WINDOW,
        compute_privacy=False,
        shards=shards,
        shard_backend=backend,
        shard_plan=plan,
        seed=0,
        **overrides,
    )
    return run_stream_session(source, config)


def assert_identical(a, b):
    assert a.accuracy_perturbed == b.accuracy_perturbed
    assert a.accuracy_baseline == b.accuracy_baseline
    assert a.deviation_series() == b.deviation_series()
    assert [w.drift_statistic for w in a.windows] == [
        w.drift_statistic for w in b.windows
    ]
    assert [(e.reason, e.window) for e in a.events] == [
        (e.reason, e.window) for e in b.events
    ]


@pytest.fixture(scope="module")
def reference():
    return run(shards=1, backend="serial")


def test_four_process_shards_match_single_shard(reference):
    """The acceptance criterion: shards=4 on the process backend yields the
    same accuracy-deviation series as shards=1 on the same seed."""
    result = run(shards=4, backend="process")
    assert_identical(result, reference)


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_backends_bit_identical(reference, backend):
    assert_identical(run(shards=2, backend=backend), reference)


@pytest.mark.parametrize("plan", ["round_robin", "hash", "party"])
def test_plans_never_change_results(reference, plan):
    assert_identical(run(shards=3, backend="thread", plan=plan), reference)


def test_sharding_composes_with_session_features(reference):
    """Sliding windows, zscore normalizer, SVM miner, trust changes — the
    sharded path must agree with the serial one under every feature combo."""
    from repro.streaming import TrustChange

    overrides = dict(
        window_kind="sliding",
        window_step=WINDOW // 2,
        normalizer="zscore",
        classifier="linear_svm",
        trust_changes=(TrustChange(window=5, party=1, trust=0.5),),
    )
    serial = run(shards=1, backend="serial", **overrides)
    sharded = run(shards=4, backend="thread", **overrides)
    assert_identical(sharded, serial)
    assert any(e.reason == "trust" for e in sharded.events)


def test_data_plane_accounting_complete(reference):
    """Every window charges k party batches plus one merged result to the
    data plane, and negotiation counters stay untouched."""
    k = reference.config.k
    assert reference.data_messages_sent == N_WINDOWS * (k + 1)
    assert reference.data_bytes_sent > 0
    # Control plane: 3 messages per non-coordinator provider per epoch.
    assert reference.messages_sent == 3 * (k - 1) * len(reference.events)
    # The shard ledgers account for every scored record exactly once.
    assert sum(reference.shard_records) == N_WINDOWS * WINDOW


def test_party_plan_charges_forward_hops():
    """Party-affine routing adds a forward hop whenever the batch's shard
    is not the window's owner — more messages, same results."""
    direct = run(shards=3, backend="serial", plan="round_robin")
    affine = run(shards=3, backend="serial", plan="party")
    assert affine.data_messages_sent > direct.data_messages_sent
    assert_identical(affine, direct)
    assert sum(affine.shard_records) == sum(direct.shard_records)


def test_shard_records_follow_the_plan():
    result = run(shards=4, backend="serial")
    # Round-robin over 8 windows of 32 records: 2 windows per shard.
    assert result.shard_records == (64, 64, 64, 64)


def test_summary_reports_sharding():
    result = run(shards=2, backend="thread")
    text = result.summary()
    assert "shards" in text and "thread" in text
    assert "shard traffic" in text


def test_partial_final_round_is_processed():
    """A trailing round smaller than the shard count still mines."""
    source = make_stream("iris", kind="stationary", n_records=5 * WINDOW, seed=0)
    config = StreamConfig(
        k=3, window_size=WINDOW, shards=4, shard_backend="serial",
        compute_privacy=False, seed=0,
    )
    result = run_stream_session(source, config)
    assert len(result.windows) == 5
    assert [w.index for w in result.windows] == list(range(5))


def test_config_validates_sharding_fields():
    with pytest.raises(ValueError):
        StreamConfig(shards=0)
    with pytest.raises(ValueError):
        StreamConfig(shard_backend="gpu")
    with pytest.raises(ValueError):
        StreamConfig(shard_plan="random")
    with pytest.raises(ValueError):
        SAPConfig(shards=0)
    with pytest.raises(ValueError):
        SAPConfig(shard_backend="gpu")


def test_batch_privacy_profiles_identical_across_backends():
    """The batch session's sharded risk profiling returns the serial
    profiles exactly, for every backend."""
    table = load_dataset("iris")
    base = run_sap_session(table, SAPConfig(k=3, seed=1), compute_privacy=True)
    for backend, shards in (("thread", 2), ("process", 2)):
        result = run_sap_session(
            table,
            SAPConfig(k=3, seed=1, shards=shards, shard_backend=backend),
            compute_privacy=True,
        )
        assert len(result.risk_profiles) == len(base.risk_profiles) == 3
        for ours, theirs in zip(result.risk_profiles, base.risk_profiles):
            assert ours.party == theirs.party
            assert ours.rho_local == theirs.rho_local
            assert ours.rho_global == theirs.rho_global
            assert ours.b == theirs.b
