"""Incremental-vs-batch normalizer equivalence (property tests)."""

import numpy as np
import pytest

from repro.core.normalization import MinMaxNormalizer, ZScoreNormalizer
from repro.streaming.normalizer import (
    RunningMinMaxNormalizer,
    RunningZScoreNormalizer,
    make_normalizer,
)


def random_chunks(X, rng):
    """Split rows of X into a random sequence of non-empty chunks."""
    n = X.shape[0]
    cuts = np.sort(rng.choice(np.arange(1, n), size=rng.integers(1, 8), replace=False))
    return np.split(X, cuts)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_running_minmax_matches_batch_exactly(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 6)) * rng.uniform(0.1, 10, size=6) + rng.normal(size=6)
    running = RunningMinMaxNormalizer()
    for chunk in random_chunks(X, rng):
        running.update(chunk)
    batch = MinMaxNormalizer().fit(X)
    frozen = running.to_batch()
    assert np.array_equal(frozen.minimums, batch.minimums)
    assert np.array_equal(frozen.maximums, batch.maximums)
    probe = rng.normal(size=(40, 6))
    assert np.allclose(running.transform(probe), batch.transform(probe))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_running_zscore_converges_to_batch(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, 5)) * rng.uniform(0.1, 5, size=5) + rng.normal(size=5)
    running = RunningZScoreNormalizer()
    for chunk in random_chunks(X, rng):
        running.update(chunk)
    batch = ZScoreNormalizer().fit(X)
    assert np.allclose(running.means, batch.means, atol=1e-10)
    assert np.allclose(running.stds, batch.stds, atol=1e-10)
    probe = rng.normal(size=(40, 5))
    assert np.allclose(running.transform(probe), batch.transform(probe))


def test_chunking_is_irrelevant():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(128, 4))
    one_shot = RunningZScoreNormalizer().update(X)
    row_by_row = RunningZScoreNormalizer()
    for row in X:
        row_by_row.update(row.reshape(1, -1))
    assert np.allclose(one_shot.means, row_by_row.means)
    assert np.allclose(one_shot.stds, row_by_row.stds, atol=1e-9)
    assert one_shot.n_seen == row_by_row.n_seen == 128


def test_minmax_constant_column_maps_to_half():
    X = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
    running = RunningMinMaxNormalizer().update(X)
    out = running.transform(X)
    assert np.all(out[:, 0] == 0.5)
    assert out[:, 1].min() == 0.0 and out[:, 1].max() == 1.0


def test_update_transform_includes_current_batch():
    running = RunningMinMaxNormalizer()
    out = running.update_transform(np.array([[0.0], [10.0]]))
    assert out.min() == 0.0 and out.max() == 1.0
    assert running.n_seen == 2


def test_unfitted_and_mismatch_errors():
    for kind in ("minmax", "zscore"):
        norm = make_normalizer(kind)
        with pytest.raises(RuntimeError):
            norm.to_batch()
        norm.update(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            norm.update(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            norm.update(np.zeros(4))
    with pytest.raises(ValueError):
        make_normalizer("unit")


def test_empty_batch_is_a_no_op():
    norm = RunningZScoreNormalizer()
    norm.update(np.zeros((0, 3)))
    assert norm.n_seen == 0
    norm.update(np.ones((2, 3)))
    norm.update(np.zeros((0, 3)))
    assert norm.n_seen == 2


# ----------------------------------------------------------------------
# merge algebra (the sharded engine's per-shard state combination)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_minmax_shard_merge_equals_unsharded_exactly(seed):
    """Random splits across per-shard normalizers, merged in any order,
    reproduce the unsharded incremental state bit for bit."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(240, 5)) * rng.uniform(0.1, 8, size=5)
    chunks = random_chunks(X, rng)

    unsharded = RunningMinMaxNormalizer()
    for chunk in chunks:
        unsharded.update(chunk)

    n_shards = int(rng.integers(2, 5))
    shards = [RunningMinMaxNormalizer() for _ in range(n_shards)]
    for index, chunk in enumerate(chunks):
        shards[index % n_shards].update(chunk)
    merged = RunningMinMaxNormalizer()
    for order in rng.permutation(n_shards):  # min/max merge is order-free
        merged.merge(shards[order])

    assert merged.n_seen == unsharded.n_seen == X.shape[0]
    assert np.array_equal(merged.minimums, unsharded.minimums)
    assert np.array_equal(merged.maximums, unsharded.maximums)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_zscore_shard_merge_equals_unsharded(seed):
    """Chan's parallel merge of per-shard Welford states agrees with the
    unsharded incremental moments (exactly in exact arithmetic; to tight
    float tolerance here)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, 4)) * rng.uniform(0.1, 5, size=4) + rng.normal(size=4)
    chunks = random_chunks(X, rng)

    unsharded = RunningZScoreNormalizer()
    for chunk in chunks:
        unsharded.update(chunk)

    n_shards = int(rng.integers(2, 5))
    shards = [RunningZScoreNormalizer() for _ in range(n_shards)]
    for index, chunk in enumerate(chunks):
        shards[index % n_shards].update(chunk)
    merged = RunningZScoreNormalizer()
    for shard in shards:
        merged.merge(shard)

    assert merged.n_seen == unsharded.n_seen == X.shape[0]
    assert np.allclose(merged.means, unsharded.means, atol=1e-12)
    assert np.allclose(merged.stds, unsharded.stds, atol=1e-10)


def test_window_order_merge_is_bit_identical_to_update():
    """Merging per-window contribution states in window order performs the
    same float operations as updating with each window — the exact
    guarantee the sharded stream session relies on."""
    rng = np.random.default_rng(9)
    windows = [rng.normal(size=(32, 6)) for _ in range(7)]
    for kind in ("minmax", "zscore"):
        updated = make_normalizer(kind)
        merged = make_normalizer(kind)
        for window in windows:
            updated.update(window)
            merged.merge(make_normalizer(kind).update(window))
        a, b = updated.to_batch(), merged.to_batch()
        if kind == "minmax":
            assert np.array_equal(a.minimums, b.minimums)
            assert np.array_equal(a.maximums, b.maximums)
        else:
            assert np.array_equal(a.means, b.means)
            assert np.array_equal(a.stds, b.stds)


def test_merging_empty_state_is_a_no_op():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(20, 3))
    for kind in ("minmax", "zscore"):
        populated = make_normalizer(kind).update(X)
        before = populated.to_batch()
        populated.merge(make_normalizer(kind))  # empty other
        after = populated.to_batch()
        empty = make_normalizer(kind)
        empty.merge(populated)  # empty self adopts the other's state
        assert empty.n_seen == populated.n_seen == 20
        if kind == "minmax":
            assert np.array_equal(before.minimums, after.minimums)
            assert np.array_equal(empty.to_batch().minimums, after.minimums)
        else:
            assert np.array_equal(before.means, after.means)
            assert np.array_equal(empty.to_batch().means, after.means)


def test_merge_rejects_mismatched_dimensions():
    a = RunningMinMaxNormalizer().update(np.zeros((4, 3)))
    b = RunningMinMaxNormalizer().update(np.zeros((4, 5)))
    with pytest.raises(ValueError):
        a.merge(b)
    za = RunningZScoreNormalizer().update(np.zeros((4, 3)))
    zb = RunningZScoreNormalizer().update(np.ones((4, 5)))
    with pytest.raises(ValueError):
        za.merge(zb)
