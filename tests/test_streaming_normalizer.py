"""Incremental-vs-batch normalizer equivalence (property tests)."""

import numpy as np
import pytest

from repro.core.normalization import MinMaxNormalizer, ZScoreNormalizer
from repro.streaming.normalizer import (
    RunningMinMaxNormalizer,
    RunningZScoreNormalizer,
    make_normalizer,
)


def random_chunks(X, rng):
    """Split rows of X into a random sequence of non-empty chunks."""
    n = X.shape[0]
    cuts = np.sort(rng.choice(np.arange(1, n), size=rng.integers(1, 8), replace=False))
    return np.split(X, cuts)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_running_minmax_matches_batch_exactly(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 6)) * rng.uniform(0.1, 10, size=6) + rng.normal(size=6)
    running = RunningMinMaxNormalizer()
    for chunk in random_chunks(X, rng):
        running.update(chunk)
    batch = MinMaxNormalizer().fit(X)
    frozen = running.to_batch()
    assert np.array_equal(frozen.minimums, batch.minimums)
    assert np.array_equal(frozen.maximums, batch.maximums)
    probe = rng.normal(size=(40, 6))
    assert np.allclose(running.transform(probe), batch.transform(probe))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_running_zscore_converges_to_batch(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, 5)) * rng.uniform(0.1, 5, size=5) + rng.normal(size=5)
    running = RunningZScoreNormalizer()
    for chunk in random_chunks(X, rng):
        running.update(chunk)
    batch = ZScoreNormalizer().fit(X)
    assert np.allclose(running.means, batch.means, atol=1e-10)
    assert np.allclose(running.stds, batch.stds, atol=1e-10)
    probe = rng.normal(size=(40, 5))
    assert np.allclose(running.transform(probe), batch.transform(probe))


def test_chunking_is_irrelevant():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(128, 4))
    one_shot = RunningZScoreNormalizer().update(X)
    row_by_row = RunningZScoreNormalizer()
    for row in X:
        row_by_row.update(row.reshape(1, -1))
    assert np.allclose(one_shot.means, row_by_row.means)
    assert np.allclose(one_shot.stds, row_by_row.stds, atol=1e-9)
    assert one_shot.n_seen == row_by_row.n_seen == 128


def test_minmax_constant_column_maps_to_half():
    X = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
    running = RunningMinMaxNormalizer().update(X)
    out = running.transform(X)
    assert np.all(out[:, 0] == 0.5)
    assert out[:, 1].min() == 0.0 and out[:, 1].max() == 1.0


def test_update_transform_includes_current_batch():
    running = RunningMinMaxNormalizer()
    out = running.update_transform(np.array([[0.0], [10.0]]))
    assert out.min() == 0.0 and out.max() == 1.0
    assert running.n_seen == 2


def test_unfitted_and_mismatch_errors():
    for kind in ("minmax", "zscore"):
        norm = make_normalizer(kind)
        with pytest.raises(RuntimeError):
            norm.to_batch()
        norm.update(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            norm.update(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            norm.update(np.zeros(4))
    with pytest.raises(ValueError):
        make_normalizer("unit")


def test_empty_batch_is_a_no_op():
    norm = RunningZScoreNormalizer()
    norm.update(np.zeros((0, 3)))
    assert norm.n_seen == 0
    norm.update(np.ones((2, 3)))
    norm.update(np.zeros((0, 3)))
    assert norm.n_seen == 2
