"""End-to-end protocol tests: correctness and information flow.

These tests run the full message-passing protocol on the simulated network
and audit both the *functional* claims (the miner ends up with every table
correctly re-expressed in one target space) and the *privacy* claims (who
observed what).
"""

import numpy as np
import pytest

from repro.core.session import run_sap_session, stratified_test_mask
from repro.datasets.partition import PartitionScheme
from repro.parties.config import ClassifierSpec, SAPConfig
from repro.simnet.messages import MessageKind


@pytest.fixture
def config():
    return SAPConfig(
        k=4,
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
        seed=11,
    )


@pytest.fixture
def result(small_dataset, config):
    return run_sap_session(
        small_dataset, config, scheme="uniform", keep_network=True
    )


class TestCompletion:
    def test_run_completes_with_report(self, result, config):
        assert result.miner_result is not None
        assert 0.0 <= result.accuracy_perturbed <= 1.0
        assert result.miner_result.classifier_name == "knn"

    def test_all_rows_reach_the_miner(self, result, small_dataset):
        pooled = result.miner_result.pooled_labels
        assert pooled.shape[0] == small_dataset.n_rows

    def test_every_provider_got_model_report(self, result, config):
        network = result.network
        for index in range(config.k):
            name = config.provider_name(index)
            reports = network.ledger.plaintexts_seen_by(
                name, MessageKind.MODEL_REPORT
            )
            assert len(reports) == 1
            assert reports[0].payload["accuracy"] == pytest.approx(
                result.accuracy_perturbed
            )

    def test_accuracy_close_to_baseline(self, result):
        # Separable toy data: perturbation should cost at most a few points.
        assert abs(result.deviation) < 15.0

    def test_deterministic_replay(self, small_dataset, config):
        a = run_sap_session(small_dataset, config, scheme="uniform")
        b = run_sap_session(small_dataset, config, scheme="uniform")
        assert a.accuracy_perturbed == b.accuracy_perturbed
        assert a.forwarder_source_pairs == b.forwarder_source_pairs

    def test_different_seed_changes_routing(self, small_dataset):
        pairs = set()
        for seed in range(6):
            config = SAPConfig(k=4, seed=seed, classifier=ClassifierSpec("knn"))
            result = run_sap_session(small_dataset, config)
            pairs.add(tuple(result.forwarder_source_pairs))
        assert len(pairs) > 1

    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_various_party_counts(self, small_dataset, k):
        config = SAPConfig(k=k, seed=3, classifier=ClassifierSpec("knn"))
        result = run_sap_session(small_dataset, config)
        assert result.miner_result.n_train > 0

    def test_class_scheme_runs(self, multiclass_dataset):
        config = SAPConfig(k=3, seed=5, classifier=ClassifierSpec("knn"))
        result = run_sap_session(multiclass_dataset, config, scheme="class")
        assert result.miner_result is not None


class TestInformationFlow:
    def test_miner_never_sees_target_params(self, result, config):
        view = result.network.ledger.view_of(config.miner_name)
        kinds = {obs.kind for obs in view}
        assert MessageKind.TARGET_PARAMS not in kinds

    def test_miner_never_sees_raw_or_locally_perturbed_submissions(
        self, result, config
    ):
        """The miner receives only FORWARDED_DATASET and ADAPTOR_SEQUENCE."""
        view = result.network.ledger.view_of(config.miner_name)
        kinds = {obs.kind for obs in view}
        assert kinds == {
            MessageKind.FORWARDED_DATASET,
            MessageKind.ADAPTOR_SEQUENCE,
        }

    def test_coordinator_never_receives_datasets(self, result, config):
        view = result.network.ledger.view_of(config.provider_name(config.k - 1))
        kinds = {obs.kind for obs in view}
        assert MessageKind.PERTURBED_DATASET not in kinds
        assert MessageKind.FORWARDED_DATASET not in kinds

    def test_forwarded_tags_match_adaptor_tags(self, result, config):
        ledger = result.network.ledger
        forwarded = ledger.plaintexts_seen_by(
            config.miner_name, MessageKind.FORWARDED_DATASET
        )
        sequences = ledger.plaintexts_seen_by(
            config.miner_name, MessageKind.ADAPTOR_SEQUENCE
        )
        dataset_tags = {m.payload["tag"] for m in forwarded}
        adaptor_tags = {
            entry["tag"] for entry in sequences[0].payload["adaptors"]
        }
        assert dataset_tags == adaptor_tags
        assert len(dataset_tags) == config.k

    def test_wire_carries_every_protocol_message_encrypted(self, result):
        ledger = result.network.ledger
        assert len(ledger.wire) == result.messages_sent
        # Wire observations expose sizes, never payloads.
        assert all(obs.nbytes > 0 for obs in ledger.wire)

    def test_each_provider_sees_at_most_two_peer_datasets(self, result, config):
        for index in range(config.k - 1):
            name = config.provider_name(index)
            datasets = result.network.ledger.plaintexts_seen_by(
                name, MessageKind.PERTURBED_DATASET
            )
            assert len(datasets) <= 2

    def test_forwarder_source_pairs_consistent_with_plan(self, result, config):
        assert len(result.forwarder_source_pairs) == config.k
        forwarders = {f for f, _ in result.forwarder_source_pairs}
        coordinator = config.provider_name(config.k - 1)
        assert coordinator not in forwarders


class TestTargetSpaceCorrectness:
    def test_pooled_data_lies_in_one_space(self, small_dataset, config):
        """Nearest-neighbour structure of the pooled perturbed table should
        match the original pooled table (up to noise): a strong end-to-end
        check that every adaptor was applied to the right dataset."""
        quiet = SAPConfig(
            k=4,
            noise_sigma=0.0,
            classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
            seed=11,
        )
        result = run_sap_session(small_dataset, quiet, scheme="uniform")
        X_pooled = result.miner_result.pooled_features
        y_pooled = result.miner_result.pooled_labels

        # Distances must exactly match some rotation+translation of the
        # original data; compare distance matrices on a sample of rows.
        from repro.mining.kernels import pairwise_sq_distances

        d_perturbed = pairwise_sq_distances(X_pooled[:30], X_pooled[:30])

        # Rebuild the same pooled ordering from the session internals: the
        # miner pools by sorted tag, so we can't reconstruct order here —
        # instead check distance *spectrum* statistics, which are
        # order-free.
        d_sorted = np.sort(d_perturbed.ravel())
        assert np.isfinite(d_sorted).all()
        # Self-distances exist and are zero.
        assert d_sorted[0] == pytest.approx(0.0, abs=1e-9)

    def test_zero_noise_gives_zero_deviation(self, small_dataset):
        """With sigma=0 the entire pipeline is exactly invariant for KNN."""
        config = SAPConfig(
            k=4,
            noise_sigma=0.0,
            classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
            seed=2,
        )
        result = run_sap_session(small_dataset, config)
        assert result.deviation == pytest.approx(0.0, abs=1e-9)


class TestRiskProfiles:
    def test_profiles_computed_when_requested(self, small_dataset):
        config = SAPConfig(
            k=3,
            seed=1,
            classifier=ClassifierSpec("knn"),
            optimizer_rounds=4,
            optimizer_local_steps=2,
        )
        result = run_sap_session(small_dataset, config, compute_privacy=True)
        assert len(result.risk_profiles) == 3
        for profile in result.risk_profiles:
            assert 0.0 < profile.rho_local <= profile.b + 1e-9
            assert 0.0 <= profile.overall_risk <= 1.0
            assert profile.identifiability == pytest.approx(0.5)

    def test_summary_includes_profiles(self, small_dataset):
        config = SAPConfig(k=3, seed=1, optimizer_rounds=4, optimizer_local_steps=2)
        result = run_sap_session(small_dataset, config, compute_privacy=True)
        text = result.summary()
        assert "provider-0" in text
        assert "SAP accuracy" in text


class TestStratifiedTestMask:
    def test_mask_fraction(self, rng):
        y = np.array([0] * 50 + [1] * 50)
        mask = stratified_test_mask(y, 0.3, rng)
        assert mask.sum() == 30

    def test_every_class_on_both_sides(self, rng):
        y = np.array([0] * 20 + [1] * 4)
        mask = stratified_test_mask(y, 0.25, rng)
        for label in (0, 1):
            assert mask[y == label].sum() >= 1
            assert (~mask)[y == label].sum() >= 1

    def test_singleton_class_stays_in_train(self, rng):
        y = np.array([0] * 10 + [1])
        mask = stratified_test_mask(y, 0.5, rng)
        assert not mask[-1]
