"""Tests for the round-timeout watchdog (liveness extension)."""

import numpy as np
import pytest

from repro.parties.config import SAPConfig
from repro.simnet.messages import MessageKind
from tests.test_failure_injection import build_protocol


def build_with_timeout(dataset, timeout=5.0, **kwargs):
    config, network, providers, coordinator, miner = build_protocol(
        dataset, **kwargs
    )
    # Rebuild config with the timeout; roles share the frozen config object,
    # so construct the protocol directly with the right one instead.
    return config, network, providers, coordinator, miner


class TestTimeoutConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SAPConfig(round_timeout=0.0)
        with pytest.raises(ValueError):
            SAPConfig(round_timeout=-1.0)

    def test_default_is_disabled(self):
        assert SAPConfig().round_timeout is None


def _build(dataset, timeout, drop_all=False, seed=5):
    """Build a protocol whose config carries a round timeout."""
    import dataclasses

    from repro.core.session import stratified_test_mask
    from repro.datasets.partition import partition_uniform
    from repro.parties.config import ClassifierSpec
    from repro.parties.coordinator import Coordinator
    from repro.parties.miner import ServiceProvider
    from repro.parties.provider import DataProvider
    from repro.simnet.channel import Network

    config = SAPConfig(
        k=3,
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
        round_timeout=timeout,
        seed=seed,
    )
    master = np.random.default_rng(seed)
    parts = partition_uniform(dataset, 3, master)
    locals_ = [dataset.subset(p) for p in parts]
    masks = [stratified_test_mask(d.y, 0.3, master) for d in locals_]
    network = Network(seed=seed)
    providers = [
        DataProvider(
            name=config.provider_name(i),
            network=network,
            dataset=locals_[i],
            test_mask=masks[i],
            config=config,
            seed=int(master.integers(2**32)),
        )
        for i in range(2)
    ]
    coordinator = Coordinator(
        name=config.provider_name(2),
        network=network,
        dataset=locals_[2],
        test_mask=masks[2],
        config=config,
        seed=int(master.integers(2**32)),
    )
    providers.append(coordinator)
    miner = ServiceProvider("miner", network, config, seed=0)
    if drop_all:
        # Block the dataset path (only non-coordinator providers ever
        # forward datasets); the coordinator's control link stays up so the
        # abort can reach the miner — a partition of the data plane.
        for i in range(2):
            network.block_link(config.provider_name(i), "miner")
    return config, network, providers, coordinator, miner


class TestHealthyRunUnaffected:
    def test_no_abort_when_run_completes(self, small_dataset):
        config, network, providers, coordinator, miner = _build(
            small_dataset, timeout=30.0
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is not None
        assert miner.abort_reason is None
        assert coordinator.model_report.get("aborted") is None


class TestStalledRunAborts:
    def test_abort_fires_and_cleans_miner(self, small_dataset):
        config, network, providers, coordinator, miner = _build(
            small_dataset, timeout=2.0, drop_all=True
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is None
        assert miner.abort_reason is not None
        assert "timed out" in miner.abort_reason
        # Partial state wiped: no stranded tables at the miner.
        assert miner._datasets_by_tag == {}

    def test_all_providers_learn_of_abort(self, small_dataset):
        config, network, providers, coordinator, miner = _build(
            small_dataset, timeout=2.0, drop_all=True
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        for provider in providers:
            assert provider.model_report is not None
            assert provider.model_report.get("aborted") is True

    def test_abort_recorded_on_the_wire(self, small_dataset):
        config, network, providers, coordinator, miner = _build(
            small_dataset, timeout=2.0, drop_all=True
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        aborts = [
            obs
            for obs in network.ledger.wire_traffic(sender="coordinator")
            if obs.kind == MessageKind.ABORT
        ]
        assert len(aborts) == 3  # 2 providers + the miner

    def test_virtual_time_reaches_deadline(self, small_dataset):
        config, network, providers, coordinator, miner = _build(
            small_dataset, timeout=2.0, drop_all=True
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert network.simulator.now >= 2.0
