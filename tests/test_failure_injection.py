"""Failure-injection tests: message loss, partitions, and stalling safely.

SAP as published has no retransmission layer (it assumes reliable encrypted
links), so the correct behaviour under loss is to *stall without partial
disclosure or partial mining* — the miner must never train on an incomplete
pool, and nothing a principal already observed should exceed its normal
view.  These tests inject faults at the network layer and verify exactly
that.
"""

import numpy as np
import pytest

from repro.core.session import stratified_test_mask
from repro.datasets.partition import partition_uniform
from repro.parties.config import ClassifierSpec, SAPConfig
from repro.parties.coordinator import Coordinator
from repro.parties.miner import ServiceProvider
from repro.parties.provider import DataProvider
from repro.simnet.channel import Network
from repro.simnet.messages import MessageKind
from repro.simnet.node import Node


def build_protocol(dataset, k=3, seed=5, drop_rate=0.0):
    """Wire up a protocol run by hand on a (possibly lossy) network."""
    config = SAPConfig(
        k=k,
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
        seed=seed,
    )
    master = np.random.default_rng(seed)
    parts = partition_uniform(dataset, k, master)
    locals_ = [dataset.subset(p) for p in parts]
    masks = [stratified_test_mask(d.y, 0.3, master) for d in locals_]

    network = Network(seed=seed, drop_rate=drop_rate)
    providers = [
        DataProvider(
            name=config.provider_name(i),
            network=network,
            dataset=locals_[i],
            test_mask=masks[i],
            config=config,
            seed=int(master.integers(2**32)),
        )
        for i in range(k - 1)
    ]
    coordinator = Coordinator(
        name=config.provider_name(k - 1),
        network=network,
        dataset=locals_[k - 1],
        test_mask=masks[k - 1],
        config=config,
        seed=int(master.integers(2**32)),
    )
    providers.append(coordinator)
    miner = ServiceProvider(
        name=config.miner_name, network=network, config=config,
        seed=int(master.integers(2**32)),
    )
    return config, network, providers, coordinator, miner


class TestTotalLoss:
    def test_nothing_delivered_at_full_drop(self, small_dataset):
        _, network, _, coordinator, miner = build_protocol(
            small_dataset, drop_rate=1.0
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is None
        assert miner.inbox == []
        assert network.messages_dropped == network.messages_sent
        # The eavesdropper still saw the transmissions.
        assert len(network.ledger.wire) == network.messages_sent


class TestPartition:
    def test_blocked_miner_link_stalls_mining(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset
        )
        # Partition one forwarder from the miner: the pool stays incomplete.
        for index in range(config.k):
            network.block_link(config.provider_name(index), config.miner_name)
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is None
        # The adaptor sequence may have arrived, but no dataset did.
        assert miner.received(MessageKind.FORWARDED_DATASET) == []

    def test_blocked_adaptor_link_stalls_mining(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset
        )
        network.block_link("coordinator", config.miner_name)
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is None
        # All datasets arrived but the tag->adaptor join never did.
        assert len(miner.received(MessageKind.FORWARDED_DATASET)) == config.k

    def test_healed_link_lets_run_complete(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset
        )
        network.block_link("coordinator", config.miner_name)
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is None
        # Heal and let the coordinator retransmit the sequence.
        network.unblock_link("coordinator", config.miner_name)
        coordinator._sequence_sent = False
        coordinator._maybe_send_sequence()
        network.run()
        assert miner.result is not None


class TestPartialLoss:
    def test_lost_single_dataset_blocks_partial_mining(self, small_dataset):
        """If one provider's submission is lost, the miner trains on
        nothing rather than on a partial pool."""
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset
        )
        victim = config.provider_name(0)
        network.block_link(victim, config.miner_name)
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        if any(f == victim for f, _ in _pairs(config, coordinator)):
            assert miner.result is None

    def test_drop_rate_statistics(self, small_dataset):
        _, network, _, coordinator, miner = build_protocol(
            small_dataset, drop_rate=0.5, seed=3
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert 0 < network.messages_dropped <= network.messages_sent


class TestAbortHandling:
    def test_abort_message_recorded(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset
        )

        class Canary(Node):
            pass

        canary = Canary("canary", network)
        canary.send(
            MessageKind.ABORT, config.provider_name(0), {"reason": "test"}
        )
        network.run()
        assert providers[0].model_report == {"aborted": True, "reason": "test"}


class TestNetworkValidation:
    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            Network(drop_rate=1.5)
        with pytest.raises(ValueError):
            Network(drop_rate=-0.1)


def _pairs(config, coordinator):
    pairs = []
    for source in range(config.k):
        forwarder = coordinator.plan.receiver_of_source(source)
        pairs.append(
            (config.provider_name(forwarder), config.provider_name(source))
        )
    return pairs
