"""Tests for the multi-column privacy metric."""

import numpy as np
import pytest

from repro.core.privacy import (
    PrivacyReport,
    column_privacy,
    combine_column_privacy,
    minimum_privacy_guarantee,
    naive_baseline_privacy,
)


@pytest.fixture
def X(rng):
    return rng.uniform(0, 1, size=(5, 100))


def test_perfect_reconstruction_gives_zero_privacy(X):
    assert minimum_privacy_guarantee(X, X.copy()) == 0.0


def test_column_privacy_shape(X):
    assert column_privacy(X, X + 0.1).shape == (5,)


def test_constant_offset_error_has_zero_std(X):
    # std of a constant error is 0: the metric measures *uncertainty*,
    # matching the paper's variance-of-difference definition.
    np.testing.assert_allclose(column_privacy(X, X + 3.0), 0.0, atol=1e-12)


def test_noise_scales_privacy(X, rng):
    small = column_privacy(X, X + rng.normal(scale=0.01, size=X.shape))
    large = column_privacy(X, X + rng.normal(scale=0.3, size=X.shape))
    assert (large > small).all()


def test_minimum_guarantee_is_worst_column(X, rng):
    X_hat = X + rng.normal(scale=0.5, size=X.shape)
    X_hat[2] = X[2]  # one column perfectly reconstructed
    assert minimum_privacy_guarantee(X, X_hat) == 0.0


def test_normalization_by_column_spread(rng):
    """A wide column and a narrow column with proportional errors score the
    same privacy."""
    narrow = rng.uniform(0, 0.1, size=(1, 500))
    wide = narrow * 10
    error = rng.normal(scale=1.0, size=(1, 500))
    p_narrow = column_privacy(narrow, narrow + 0.01 * error)
    p_wide = column_privacy(wide, wide + 0.1 * error)
    np.testing.assert_allclose(p_narrow, p_wide, rtol=1e-9)


def test_mean_guess_baseline_is_one(X):
    assert naive_baseline_privacy(X) == pytest.approx(1.0, abs=1e-9)


def test_shape_mismatch_rejected(X):
    with pytest.raises(ValueError):
        column_privacy(X, X[:, :10])


def test_one_dimensional_rejected():
    with pytest.raises(ValueError):
        column_privacy(np.zeros(5), np.zeros(5))


def test_combine_column_privacy_elementwise_min():
    a = np.array([0.5, 0.2, 0.9])
    b = np.array([0.3, 0.4, 1.0])
    np.testing.assert_array_equal(
        combine_column_privacy([a, b]), [0.3, 0.2, 0.9]
    )


class TestPrivacyReport:
    def test_guarantee_is_worst_attack(self):
        report = PrivacyReport(
            per_attack={"naive": 0.8, "ica": 0.3, "known": 0.5},
            per_column_worst=np.array([0.3, 0.4]),
        )
        assert report.guarantee == 0.3
        assert report.strongest_attack == "ica"

    def test_empty_report_rejected(self):
        report = PrivacyReport(per_attack={}, per_column_worst=np.array([]))
        with pytest.raises(ValueError):
            _ = report.guarantee

    def test_summary_orders_worst_first(self):
        report = PrivacyReport(
            per_attack={"naive": 0.8, "ica": 0.3},
            per_column_worst=np.array([0.3]),
        )
        text = report.summary()
        assert text.index("ica") < text.index("naive")
        assert "guarantee" in text
