"""Span-file aggregation: percentiles, stage tables, and error paths."""

import json

import pytest

from repro.obs.report import (
    STAGES,
    load_spans,
    percentile,
    render_latency_report,
    rounds_table,
    stage_summary,
)


def _span(name, duration, round_id=None, span_id=1, parent_id=None):
    attrs = {} if round_id is None else {"round": round_id}
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": 0.0,
        "duration": duration,
        "attrs": attrs,
    }


SPANS = [
    _span("control", 0.010, round_id=0),
    _span("dispatch", 0.002, round_id=0),
    _span("settle", 0.005, round_id=0),
    _span("merge", 0.001, round_id=0),
    _span("control", 0.030, round_id=1),
    _span("dispatch", 0.004, round_id=1),
    _span("seal", 0.0),
    _span("session", 0.100),  # not a stage: never aggregated
]


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile([7.0], 95) == 7.0
    assert percentile([], 50) == 0.0


def test_percentile_rejects_out_of_range():
    with pytest.raises(ValueError, match="0, 100"):
        percentile([1.0], 101)


def test_stage_summary_aggregates_only_stages():
    summary = stage_summary(SPANS)
    assert set(summary) <= set(STAGES)
    assert "session" not in summary
    control = summary["control"]
    assert control["count"] == 2
    assert control["mean"] == pytest.approx(0.020)
    assert control["total"] == pytest.approx(0.040)
    assert summary["seal"]["count"] == 1


def test_stage_summary_skips_open_spans():
    spans = SPANS + [_span("control", None, round_id=2)]
    assert stage_summary(spans)["control"]["count"] == 2


def test_rounds_table_rows_are_sorted_by_round():
    rows = rounds_table(SPANS)
    assert [row["round"] for row in rows] == [0, 1]
    assert rows[0]["settle"] == pytest.approx(0.005)
    assert "settle" not in rows[1]  # round 1 never settled in this file


def test_rounds_table_keeps_larger_duplicate():
    spans = [_span("merge", 0.001, round_id=0), _span("merge", 0.009, round_id=0)]
    assert rounds_table(spans)[0]["merge"] == pytest.approx(0.009)


def test_render_latency_report_shape():
    text = render_latency_report(SPANS)
    assert "per-stage latency (ms)" in text
    assert "per-round stage durations (ms)" in text
    assert "control" in text and "10.00" in text  # 0.010 s rendered as ms
    assert "-" in text  # missing round-1 stages rendered as gaps


def test_render_latency_report_truncates_rounds():
    spans = [
        _span("control", 0.001, round_id=i) for i in range(30)
    ]
    text = render_latency_report(spans, max_rounds=5)
    assert "(30 rounds total)" in text
    assert render_latency_report([]) == "(no stage spans)"


def test_load_spans_round_trips(tmp_path):
    path = tmp_path / "spans.jsonl"
    path.write_text(
        "\n".join(json.dumps(s, sort_keys=True) for s in SPANS) + "\n\n"
    )
    assert load_spans(str(path)) == SPANS


def test_load_spans_reports_bad_lines_with_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"name": "ok"}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        load_spans(str(path))
    path.write_text('{"no_name": 1}\n')
    with pytest.raises(ValueError, match="'name' field"):
        load_spans(str(path))


def test_load_spans_missing_file_is_a_value_error(tmp_path):
    with pytest.raises(ValueError, match="cannot read span file"):
        load_spans(str(tmp_path / "absent.jsonl"))


def test_load_span_sources_merges_files_and_directories(tmp_path):
    from repro.obs.report import load_span_sources

    one = tmp_path / "one.jsonl"
    one.write_text(json.dumps(_span("control", 0.010, round_id=0)) + "\n")
    nested = tmp_path / "runs" / "000-a" 
    nested.mkdir(parents=True)
    (nested / "spans.jsonl").write_text(
        json.dumps(_span("dispatch", 0.002, round_id=0)) + "\n"
    )
    spans, files = load_span_sources([str(one), str(tmp_path / "runs")])
    assert len(spans) == 2
    assert [s["name"] for s in spans] == ["control", "dispatch"]
    assert files == [str(one), str(nested / "spans.jsonl")]
    # a directory alone recurses and sorts deterministically
    again, _ = load_span_sources([str(tmp_path)])
    assert len(again) == 2


def test_load_span_sources_empty_directory_is_an_error(tmp_path):
    from repro.obs.report import load_span_sources

    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError, match="no \\*\\.jsonl span files"):
        load_span_sources([str(empty)])
    with pytest.raises(ValueError, match="cannot read span file"):
        load_span_sources([str(tmp_path / "missing.jsonl")])
