"""Tests for the post-mining classification service.

Figure 1's framework has the miner *serve* models back to providers; this
suite checks the request/response flow, the privacy of queries (records
leave the provider only in the unified target space, optionally noised),
and the end-to-end label quality.
"""

import numpy as np
import pytest

from repro.simnet.messages import MessageKind
from tests.test_failure_injection import build_protocol


@pytest.fixture
def completed(small_dataset):
    config, network, providers, coordinator, miner = build_protocol(
        small_dataset, k=3, seed=21
    )
    network.simulator.schedule(0.0, coordinator.start)
    network.run()
    assert miner.result is not None
    return config, network, providers, coordinator, miner, small_dataset


class TestClassifyFlow:
    def test_labels_arrive_for_request(self, completed):
        config, network, providers, coordinator, miner, dataset = completed
        provider = providers[0]
        queries = provider.dataset.X[:8]
        request_id = provider.request_classification(queries)
        network.run()
        assert request_id in provider.classification_results
        labels = provider.classification_results[request_id]
        assert labels.shape == (8,)
        assert set(labels.tolist()) <= set(dataset.classes.tolist())

    def test_clean_queries_match_local_model_quality(self, completed):
        """Without noise, querying the service on the provider's own rows
        should reproduce its labels at well-above-chance accuracy."""
        config, network, providers, coordinator, miner, dataset = completed
        provider = providers[1]
        queries = provider.dataset.X
        request_id = provider.request_classification(queries, with_noise=False)
        network.run()
        labels = provider.classification_results[request_id]
        accuracy = float(np.mean(labels == provider.dataset.y))
        assert accuracy > 0.8

    def test_multiple_outstanding_requests(self, completed):
        config, network, providers, coordinator, miner, dataset = completed
        provider = providers[0]
        first = provider.request_classification(provider.dataset.X[:5])
        second = provider.request_classification(provider.dataset.X[5:9])
        network.run()
        assert provider.classification_results[first].shape == (5,)
        assert provider.classification_results[second].shape == (4,)
        assert first != second

    def test_queries_are_target_space_only(self, completed):
        """The miner must never see raw query rows: the request payload is
        the target-space transform (+ noise), not the original records."""
        config, network, providers, coordinator, miner, dataset = completed
        provider = providers[0]
        raw = provider.dataset.X[:6]
        provider.request_classification(raw)
        network.run()
        requests = network.ledger.plaintexts_seen_by(
            config.miner_name, MessageKind.CLASSIFY_REQUEST
        )
        sent = np.asarray(requests[0].payload["features"]).T
        # Not equal to the raw records...
        assert not np.allclose(sent, raw, atol=1e-3)
        # ...but close to the target transform of them (up to noise).
        expected = np.asarray(
            coordinator.target.transform_clean(raw.T)
        ).T
        assert float(np.abs(sent - expected).mean()) < 4 * config.noise_sigma

    def test_request_before_target_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        with pytest.raises(RuntimeError):
            providers[0].request_classification(providers[0].dataset.X[:2])

    def test_bad_query_shape_rejected(self, completed):
        config, network, providers, coordinator, miner, dataset = completed
        with pytest.raises(ValueError):
            providers[0].request_classification(np.zeros((3, 99)))

    def test_error_response_when_no_model(self, small_dataset):
        """A classify request racing ahead of mining gets an explicit error
        (raised at the provider when the response is delivered)."""
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        provider = providers[0]
        # Give the provider target params directly so it can build a query.
        from repro.core.perturbation import sample_perturbation

        provider.target = sample_perturbation(
            small_dataset.n_features, np.random.default_rng(0)
        ).without_noise()
        provider.request_classification(provider.dataset.X[:2])
        with pytest.raises(Exception):
            network.run()
