"""The experiment harness: config parsing, expansion, runner, report, gate.

Runner tests sweep a deliberately tiny stream grid (one 32-record window)
so the whole file stays inside the tier-1 time budget; the crash tests
monkeypatch ``execute_spec`` instead of manufacturing real failures.
"""

import json

import pytest

from repro.obs import (
    ExperimentConfig,
    expand_run_table,
    load_experiment_config,
    load_runs,
    render_experiment_report,
    run_experiment,
    run_gate,
)
from repro.obs.experiment import (
    METRICS_FILE,
    RESULT_FILE,
    SPANS_FILE,
    SPEC_FILE,
    flatten_metrics,
    machine_fingerprint,
)

TINY_BASE = {
    "kind": "stream",
    "dataset": "wine",
    "k": 3,
    "windows": 1,
    "window_size": 32,
    "compute_privacy": False,
    "seed": 0,
}


def tiny_config(**kwargs):
    mapping = {
        "name": "tiny",
        "base": dict(TINY_BASE),
        "factors": {"shards": [1, 2]},
    }
    mapping.update(kwargs)
    return ExperimentConfig.from_mapping(mapping)


# ----------------------------------------------------------------------
# config parsing
# ----------------------------------------------------------------------
def test_config_loads_from_json(tmp_path):
    path = tmp_path / "exp.json"
    path.write_text(
        json.dumps(
            {
                "name": "sweep",
                "description": "demo",
                "base": {"kind": "stream", "dataset": "wine"},
                "factors": {"shards": [1, 2], "overlap": [False, True]},
                "repetitions": 2,
            }
        )
    )
    config = load_experiment_config(str(path))
    assert config.name == "sweep"
    assert config.repetitions == 2
    assert config.factor_names == ("shards", "overlap")
    assert dict(config.base)["dataset"] == "wine"
    # to_mapping round-trips through from_mapping
    again = ExperimentConfig.from_mapping(config.to_mapping())
    assert again == config


def test_config_loads_from_toml(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "exp.toml"
    path.write_text(
        'name = "sweep"\n'
        "repetitions = 1\n"
        "[base]\n"
        'kind = "stream"\n'
        'dataset = "wine"\n'
        "[factors]\n"
        "shards = [1, 2]\n"
    )
    config = load_experiment_config(str(path))
    assert config.name == "sweep"
    assert config.factors == (("shards", (1, 2)),)


def test_config_rejects_unknown_keys_and_bad_shapes(tmp_path):
    with pytest.raises(ValueError, match="unknown experiment config key"):
        ExperimentConfig.from_mapping(
            {"name": "x", "factors": {"shards": [1]}, "runs": 3}
        )
    with pytest.raises(ValueError, match="needs a 'name'"):
        ExperimentConfig.from_mapping({"factors": {"shards": [1]}})
    with pytest.raises(ValueError, match="non-empty 'factors'"):
        ExperimentConfig.from_mapping({"name": "x", "factors": {}})
    with pytest.raises(ValueError, match="levels must be a list"):
        ExperimentConfig.from_mapping({"name": "x", "factors": {"shards": "12"}})
    with pytest.raises(ValueError, match="has no levels"):
        ExperimentConfig.from_mapping({"name": "x", "factors": {"shards": []}})
    with pytest.raises(ValueError, match="repetitions"):
        ExperimentConfig.from_mapping(
            {"name": "x", "factors": {"shards": [1]}, "repetitions": 0}
        )
    with pytest.raises(ValueError, match="slug"):
        ExperimentConfig.from_mapping(
            {"name": "bad name!", "factors": {"shards": [1]}}
        )
    with pytest.raises(ValueError, match="telemetry"):
        ExperimentConfig.from_mapping(
            {"name": "x", "factors": {"telemetry": [1]}}
        )
    bad = tmp_path / "broken.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_experiment_config(str(bad))
    with pytest.raises(ValueError, match="cannot read"):
        load_experiment_config(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# run-table expansion
# ----------------------------------------------------------------------
def test_expansion_is_deterministic_row_major_with_rep_seeds():
    config = ExperimentConfig.from_mapping(
        {
            "name": "grid",
            "base": dict(TINY_BASE),
            "factors": {"shards": [1, 2], "overlap": [False, True]},
            "repetitions": 2,
        }
    )
    table = expand_run_table(config)
    assert len(table) == 2 * 2 * 2
    assert table == expand_run_table(config)  # element-wise identical
    assert len({cell.run_id for cell in table}) == len(table)
    # row-major: the last factor varies fastest, reps innermost
    assert [dict(c.overrides) for c in table[:4]] == [
        {"shards": 1, "overlap": False},
        {"shards": 1, "overlap": False},
        {"shards": 1, "overlap": True},
        {"shards": 1, "overlap": True},
    ]
    # repetitions offset the base seed so repeats draw fresh randomness
    assert dict(table[0].spec_mapping)["seed"] == 0
    assert dict(table[1].spec_mapping)["seed"] == 1
    assert table[0].run_id == "000-shards=1-overlap=false-r0"
    assert table[1].run_id == "001-shards=1-overlap=false-r1"


def test_expansion_validates_cells_naming_the_offender():
    config = ExperimentConfig.from_mapping(
        {
            "name": "bad",
            "base": dict(TINY_BASE),
            "factors": {"shard_backend": ["serial", "carrier-pigeon"]},
        }
    )
    with pytest.raises(ValueError, match="run table cell 001-shard_backend"):
        expand_run_table(config)
    config = ExperimentConfig.from_mapping(
        {"name": "bad2", "base": dict(TINY_BASE), "factors": {"warp": [9]}}
    )
    with pytest.raises(ValueError, match="run table cell 000-warp=9-r0"):
        expand_run_table(config)


# ----------------------------------------------------------------------
# the runner: artifacts, resume, crash isolation
# ----------------------------------------------------------------------
def test_runner_persists_artifacts_and_resumes(tmp_path):
    config = tiny_config()
    root = str(tmp_path / "results")
    run = run_experiment(config, results_root=root, timestamp="t0")
    assert (run.total, run.executed, run.skipped, run.failed) == (2, 2, 0, 0)
    assert run.ok
    for cell in expand_run_table(config):
        run_dir = tmp_path / "results" / "tiny" / cell.run_id
        for name in (SPEC_FILE, SPANS_FILE, METRICS_FILE, RESULT_FILE):
            assert (run_dir / name).is_file(), name
        artifact = json.loads((run_dir / RESULT_FILE).read_text())
        assert artifact["status"] == "ok"
        assert artifact["timestamp"] == "t0"
        assert artifact["machine"] == machine_fingerprint()
        assert artifact["wall_seconds"] > 0
        assert artifact["summary"]["records"] == 32
    # resume: nothing re-executes
    again = run_experiment(config, results_root=root)
    assert (again.executed, again.skipped) == (0, 2)
    # resume=False re-runs everything
    forced = run_experiment(config, results_root=root, resume=False)
    assert (forced.executed, forced.skipped) == (2, 0)


def test_runner_survives_a_crashed_cell_and_retries_it_on_resume(
    tmp_path, monkeypatch
):
    import repro.serve.engine as engine

    config = tiny_config()
    root = str(tmp_path / "results")
    real_execute = engine.execute_spec

    def crash_on_two_shards(spec, telemetry=None):
        if spec.shards == 2:
            raise RuntimeError("injected shard-pool crash")
        return real_execute(spec, telemetry=telemetry)

    monkeypatch.setattr(engine, "execute_spec", crash_on_two_shards)
    run = run_experiment(config, results_root=root)
    assert (run.executed, run.failed) == (1, 1)
    assert not run.ok
    failed_dir = tmp_path / "results" / "tiny" / "001-shards=2-r0"
    artifact = json.loads((failed_dir / RESULT_FILE).read_text())
    assert artifact["status"] == "error"
    assert "injected shard-pool crash" in artifact["error"]
    # crashed cells still leave a metrics snapshot behind
    assert (failed_dir / METRICS_FILE).is_file()

    # resume with the crash gone: only the failed cell executes
    monkeypatch.setattr(engine, "execute_spec", real_execute)
    resumed = run_experiment(config, results_root=root)
    assert (resumed.executed, resumed.skipped, resumed.failed) == (1, 1, 0)
    assert resumed.ok


# ----------------------------------------------------------------------
# the report stage
# ----------------------------------------------------------------------
def test_report_joins_artifacts_metrics_and_spans(tmp_path):
    config = tiny_config()
    run = run_experiment(config, results_root=str(tmp_path), timestamp="t0")
    runs = load_runs(run.directory)
    assert [r["run_id"] for r in runs] == [
        "000-shards=1-r0", "001-shards=2-r0",
    ]
    report = render_experiment_report(runs, name="tiny")
    assert "# Experiment report — tiny" in report
    assert "runs: 2 (2 ok, 0 failed)" in report
    assert "## Run table" in report
    assert "## Throughput by factor" in report
    assert "| shards | 1 |" in report
    assert "## Stage latency across runs" in report
    assert "| renegotiate |" in report  # joined from the per-run span files
    assert "repro_stream_records_total" in report  # joined from snapshots
    html = render_experiment_report(runs, name="tiny", fmt="html")
    assert html.startswith("<!DOCTYPE html>")
    assert "&mdash;" not in html and "Run table" in html
    with pytest.raises(ValueError, match="'md' or 'html'"):
        render_experiment_report(runs, fmt="pdf")
    with pytest.raises(ValueError, match="not an experiment directory"):
        load_runs(str(tmp_path / "nope"))
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ValueError, match="no run artifacts"):
        load_runs(str(empty))


def test_report_lists_failures(tmp_path, monkeypatch):
    import repro.serve.engine as engine

    def always_crash(spec, telemetry=None):
        raise RuntimeError("boom")

    monkeypatch.setattr(engine, "execute_spec", always_crash)
    run = run_experiment(tiny_config(), results_root=str(tmp_path))
    report = render_experiment_report(load_runs(run.directory), name="tiny")
    assert "## Failures" in report
    assert "RuntimeError: boom" in report


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def _trajectory(path, metrics, machine=None, bench="overlap"):
    payload = {
        "bench": bench,
        "entries": [
            {
                "timestamp": "t0",
                "machine": machine or machine_fingerprint(),
                "metrics": metrics,
            }
        ],
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_gate_passes_within_tolerance_and_fails_beyond(tmp_path):
    baseline = _trajectory(
        tmp_path / "base.json",
        {"shards=2": {"serial_records_per_s": 1000.0, "speedup": 1.0}},
    )
    # 10% drop with 20% tolerance: pass
    current = _trajectory(
        tmp_path / "cur_ok.json",
        {"shards=2": {"serial_records_per_s": 900.0, "speedup": 1.0}},
    )
    report = run_gate(baseline, current_path=current)
    assert report.ok
    assert report.compared == 1 and report.regressions == 0
    assert "PASS" in report.text and "-10.0%" in report.text
    # 30% drop with 20% tolerance: fail
    current = _trajectory(
        tmp_path / "cur_bad.json",
        {"shards=2": {"serial_records_per_s": 700.0}},
    )
    report = run_gate(baseline, current_path=current)
    assert not report.ok
    assert report.regressions == 1
    assert "FAIL" in report.text and "REGRESSION" in report.text
    # a tighter tolerance flips the passing comparison
    current = _trajectory(
        tmp_path / "cur_mid.json",
        {"shards=2": {"serial_records_per_s": 900.0}},
    )
    assert not run_gate(baseline, current_path=current, tolerance=0.05).ok
    with pytest.raises(ValueError, match=r"tolerance must be in \[0, 1\)"):
        run_gate(baseline, current_path=current, tolerance=1.5)


def test_gate_is_vacuous_without_a_matching_machine(tmp_path):
    other = {"platform": "elsewhere", "python": "0.0", "cpus": 1}
    baseline = _trajectory(
        tmp_path / "base.json",
        {"serial_records_per_s": 1000.0},
        machine=other,
    )
    current = _trajectory(
        tmp_path / "cur.json", {"serial_records_per_s": 10.0}
    )
    report = run_gate(baseline, current_path=current)
    assert report.ok
    assert report.skipped == "no matching baseline"
    assert "vacuous" in report.text
    # --allow-machine-mismatch compares anyway (and fails on the drop)
    report = run_gate(
        baseline, current_path=current, allow_machine_mismatch=True
    )
    assert not report.ok


def test_gate_compares_only_shared_throughput_keys(tmp_path):
    baseline = _trajectory(
        tmp_path / "base.json",
        {
            "serial_records_per_s": 1000.0,
            "overlap_records_per_s": 2000.0,
            "n_windows": 6,  # not throughput: never compared
        },
    )
    current = _trajectory(
        tmp_path / "cur.json",
        {"serial_records_per_s": 950.0},  # overlap key absent on this side
    )
    report = run_gate(baseline, current_path=current)
    assert report.ok and report.compared == 1
    # no shared throughput keys at all: vacuous pass, explicitly flagged
    current = _trajectory(tmp_path / "cur2.json", {"n_windows": 6})
    report = run_gate(baseline, current_path=current)
    assert report.ok and report.skipped == "no throughput metrics"


def test_gate_write_current_records_a_trajectory(tmp_path):
    baseline = _trajectory(
        tmp_path / "base.json", {"serial_records_per_s": 1000.0}
    )
    current = _trajectory(
        tmp_path / "cur.json", {"serial_records_per_s": 990.0}
    )
    out = tmp_path / "fresh.json"
    run_gate(
        baseline,
        current_path=current,
        write_current=str(out),
        timestamp="t9",
    )
    written = json.loads(out.read_text())
    assert written["bench"] == "overlap"
    assert written["entries"][0]["timestamp"] == "t9"
    assert written["entries"][0]["machine"] == machine_fingerprint()
    assert written["entries"][0]["metrics"] == {"serial_records_per_s": 990.0}


def test_gate_rejects_malformed_trajectories(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"entries": [{"timestamp": 3}]}))
    with pytest.raises(ValueError, match="entry 0"):
        run_gate(str(bad))
    bad.write_text(json.dumps([1, 2]))
    with pytest.raises(ValueError, match="not a benchmark trajectory"):
        run_gate(str(bad))
    with pytest.raises(ValueError, match="cannot read"):
        run_gate(str(tmp_path / "missing.json"))


def test_flatten_metrics_keeps_numeric_leaves_only():
    flat = flatten_metrics(
        {
            "a": {"records_per_s": 10, "note": "text", "deep": {"x": 1.5}},
            "quick": True,  # bools are flags, not measurements
            "n": 3,
        }
    )
    assert flat == {"a.records_per_s": 10.0, "a.deep.x": 1.5, "n": 3.0}


def test_committed_quick_example_expands_cleanly():
    import os

    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "examples",
        "experiment_quick.json",
    )
    config = load_experiment_config(path)
    assert config.name == "quick"
    table = expand_run_table(config)
    assert len(table) == 2 * 2 * 2  # shards x backend x overlap
    assert len({cell.run_id for cell in table}) == 8


# ----------------------------------------------------------------------
# the diff stage
# ----------------------------------------------------------------------
def _fabricate_run(root, run_id, rate, status="ok"):
    """One synthetic persisted cell: spec manifest + result artifact."""
    run_dir = root / run_id
    run_dir.mkdir(parents=True)
    (run_dir / SPEC_FILE).write_text(json.dumps({"run_id": run_id}))
    artifact = {"status": status, "timestamp": "t0"}
    if status == "ok":
        artifact["summary"] = {"records_per_s": rate, "records": 32}
    else:
        artifact["error"] = "injected"
    (run_dir / RESULT_FILE).write_text(json.dumps(artifact))


def test_diff_passes_within_tolerance_and_fails_beyond(tmp_path):
    from repro.obs import run_diff

    a = tmp_path / "a"
    b = tmp_path / "b"
    for root, rates in ((a, (1000.0, 2000.0)), (b, (950.0, 2900.0))):
        _fabricate_run(root, "000-shards=1-r0", rates[0])
        _fabricate_run(root, "001-shards=2-r0", rates[1])
    report = run_diff(str(a), str(b))
    assert report.ok
    assert report.compared == 2
    assert report.regressions == 0
    assert report.improvements == 1  # +45% on the second cell
    assert "diff: PASS" in report.text
    assert "improved" in report.text

    worse = tmp_path / "worse"
    _fabricate_run(worse, "000-shards=1-r0", 100.0)
    _fabricate_run(worse, "001-shards=2-r0", 2000.0)
    report = run_diff(str(a), str(worse))
    assert not report.ok
    assert report.regressions == 1
    assert "diff: FAIL" in report.text
    assert "REGRESSION" in report.text
    assert "-90.0%" in report.text


def test_diff_skips_unmatched_and_errored_cells(tmp_path):
    from repro.obs import run_diff

    a = tmp_path / "a"
    b = tmp_path / "b"
    _fabricate_run(a, "000-shards=1-r0", 1000.0)
    _fabricate_run(a, "001-shards=2-r0", 1000.0)
    _fabricate_run(b, "000-shards=1-r0", 1000.0)
    _fabricate_run(b, "002-shards=4-r0", 1000.0)
    _fabricate_run(a, "003-shards=8-r0", 1000.0)
    _fabricate_run(b, "003-shards=8-r0", 0.0, status="error")
    report = run_diff(str(a), str(b))
    assert report.ok  # nothing comparable regressed
    assert report.compared == 1
    assert "only in A: 001-shards=2-r0" in report.text
    assert "only in B: 002-shards=4-r0" in report.text
    assert "not completed in B: 003-shards=8-r0" in report.text


def test_diff_validates_tolerance_and_directories(tmp_path):
    from repro.obs import run_diff

    with pytest.raises(ValueError, match="tolerance"):
        run_diff(str(tmp_path), str(tmp_path), tolerance=1.5)
    with pytest.raises(ValueError, match="experiment directory"):
        run_diff(str(tmp_path / "nope"), str(tmp_path / "nope"))
