"""Event-time ingestion plane: sealing invariants and late policies.

The properties pinned here are the redesign's contract:

* an in-order stream seals exactly the windows the legacy arrival-driven
  buffers emit (contents, order, freshness, timestamps);
* the sealed-window sequence is identical for every shard count and plan;
* an out-of-order stream whose observed lateness stays within the
  watermark seals the same windows as the sorted stream;
* ``readmit`` never loses a record, ``drop`` accounts every discard, and
  ``upsert`` re-emits late rows as corrections — in every case each
  surviving record is fresh in exactly one emitted window.
"""

import numpy as np
import pytest

from repro.sharding import ShardPlan
from repro.streaming.ingest import LATE_POLICIES, IngestPlane
from repro.streaming.sources import StreamRecord, skewed
from repro.streaming.windows import make_window_buffer


def seq_records(n, d=1):
    """n records whose first feature is their own sequence number."""
    return [
        StreamRecord(
            x=np.full(d, float(i)), y=i % 2, time=float(i) / 10.0, seq=i
        )
        for i in range(n)
    ]


def make_plane(shards=1, strategy="round_robin", kind="tumbling", size=8,
               step=None, k=3, delay=0, policy="drop"):
    plan = ShardPlan(shards, strategy, n_parties=k)
    return IngestPlane(
        plan,
        window_kind=kind,
        window_size=size,
        window_step=step,
        providers=[f"p{i}" for i in range(k)],
        watermark_delay=delay,
        late_policy=policy,
    )


def run_plane(records, **kwargs):
    plane = make_plane(**kwargs)
    windows = list(plane.ingest(records))
    return windows, plane


def fresh_seqs(windows):
    """Sequence numbers scored as fresh, in emission order."""
    out = []
    for window in windows:
        out.extend(int(v) for v in window.X[-window.fresh :, 0])
    return out


def windows_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.index == right.index
        assert left.revision == right.revision
        assert left.fresh == right.fresh
        assert np.array_equal(left.X, right.X)
        assert np.array_equal(left.y, right.y)
        assert left.start == right.start and left.end == right.end


# ----------------------------------------------------------------------
# in-order compatibility with the legacy buffers
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kind,size,step,n",
    [
        ("tumbling", 4, None, 10),
        ("tumbling", 4, None, 8),
        ("sliding", 4, 2, 9),
        ("sliding", 4, 2, 8),
        ("sliding", 5, 2, 17),
        ("sliding", 6, 6, 14),
    ],
)
def test_in_order_stream_matches_legacy_buffer(kind, size, step, n):
    records = seq_records(n, d=3)
    buffer = make_window_buffer(kind, size, step)
    legacy = []
    for record in records:
        legacy.extend(buffer.push(record.x, record.y, record.time))
    tail = buffer.flush()
    if tail is not None:
        legacy.append(tail)

    sealed, _ = run_plane(records, kind=kind, size=size, step=step)
    windows_equal(sealed, legacy)


@pytest.mark.parametrize("shards,strategy", [
    (1, "round_robin"), (2, "round_robin"), (4, "round_robin"),
    (3, "hash"), (3, "party"),
])
def test_seal_order_independent_of_shard_count_and_plan(shards, strategy):
    records = seq_records(50, d=2)
    reference, _ = run_plane(records, kind="sliding", size=8, step=4)
    sealed, _ = run_plane(
        records, shards=shards, strategy=strategy, kind="sliding", size=8, step=4
    )
    windows_equal(sealed, reference)


def test_watermark_delays_sealing():
    plane = make_plane(size=4, delay=3)
    sealed = []
    for record in seq_records(12):
        sealed.extend(plane.push(record))
    # Window 0 (seqs 0..3) seals only once the frontier passes 3 + 3.
    assert [w.index for w in sealed] == [0, 1]
    assert plane.next_seal == 2
    sealed.extend(plane.finish())
    assert [w.index for w in sealed] == [0, 1, 2]


# ----------------------------------------------------------------------
# out-of-order streams
# ----------------------------------------------------------------------
def test_bounded_lateness_seals_the_sorted_windows():
    records = seq_records(96, d=2)
    reference, _ = run_plane(records, kind="sliding", size=8, step=4)
    for seed in (0, 1, 2):
        shuffled = list(skewed(records, 7, seed=seed))
        assert [r.seq for r in shuffled] != list(range(96))
        sealed, plane = run_plane(
            shuffled, kind="sliding", size=8, step=4, delay=7, policy="readmit"
        )
        stats = plane.stats()
        assert stats.late == 0 and stats.readmitted == 0
        assert 0 < stats.max_skew <= 7
        windows_equal(sealed, reference)


def test_readmit_never_loses_a_record():
    records = seq_records(100)
    rng = np.random.default_rng(5)
    shuffled = [records[i] for i in rng.permutation(100)]
    sealed, plane = run_plane(shuffled, size=8, delay=0, policy="readmit")
    stats = plane.stats()
    assert stats.late > 0 and stats.readmitted == stats.late
    assert stats.dropped == 0
    assert sorted(fresh_seqs(sealed)) == list(range(100))


def test_late_record_still_joins_its_open_overlapping_windows():
    # Regression: a record whose fresh window already sealed is *late*,
    # but with sliding windows it may still belong to open windows as
    # stale context — it must appear there, or window contents diverge
    # from the sorted event stream.
    records = seq_records(8, d=1)
    order = [0, 1, 2, 4, 3, 5, 6, 7]  # record 3 arrives after 4 seals w0
    plane = make_plane(kind="sliding", size=4, step=2, policy="drop")
    sealed = []
    for i in order:
        sealed.extend(plane.push(records[i]))
    sealed.extend(plane.finish())
    assert plane.stats().late == 1 and plane.stats().dropped == 1
    by_index = {w.index: w for w in sealed}
    # Window 1 covers seqs 2..5; the late record 3 is stale context there.
    assert [int(v) for v in by_index[1].X[:, 0]] == [2, 3, 4, 5]
    # Dropped means never *fresh*: 3 is absent from every fresh region.
    assert 3 not in fresh_seqs(sealed)


def test_drop_accounts_every_discard():
    records = seq_records(100)
    shuffled = list(skewed(records, 20, seed=3))
    sealed, plane = run_plane(shuffled, size=8, delay=0, policy="drop")
    stats = plane.stats()
    assert stats.late > 0 and stats.dropped == stats.late
    survivors = fresh_seqs(sealed)
    assert len(survivors) == len(set(survivors))
    assert len(survivors) + stats.dropped == 100
    assert all(w.revision == 0 for w in sealed)


def test_upsert_reemits_late_rows_as_corrections():
    records = seq_records(100)
    shuffled = list(skewed(records, 20, seed=3))
    sealed, plane = run_plane(shuffled, size=8, delay=0, policy="upsert")
    stats = plane.stats()
    corrections = [w for w in sealed if w.revision > 0]
    assert stats.late > 0 and stats.upserted == stats.late
    assert corrections and all(w.fresh == w.n_rows for w in corrections)
    # Each correction patches a window that was already sealed earlier.
    for position, window in enumerate(sealed):
        if window.revision == 0:
            continue
        earlier = [w.index for w in sealed[:position] if w.revision == 0]
        assert window.index in earlier
    # Every record is fresh exactly once, corrections included.
    assert sorted(fresh_seqs(sealed)) == list(range(100))


def test_finish_without_partial_tail_mirrors_the_legacy_session():
    # The legacy session never flushed its buffer, so the in-order
    # remainder of a non-multiple stream was dropped.  The plane must
    # reproduce that on request — while still emitting rows readmitted
    # into the tail, which the readmit policy promises never to lose.
    records = seq_records(10, d=2)
    plane = make_plane(size=4)
    sealed = []
    for record in records:
        sealed.extend(plane.push(record))
    sealed.extend(plane.finish(emit_partial_tail=False))
    assert [w.index for w in sealed] == [0, 1]
    assert fresh_seqs(sealed) == list(range(8))  # seqs 8, 9 discarded

    # Same stream shuffled so records land late and get readmitted into
    # the tail: those rows must survive the tail discard.
    shuffled = [records[i] for i in (3, 4, 5, 6, 7, 8, 9, 0, 1, 2)]
    plane = make_plane(size=4, policy="readmit")
    sealed = []
    for record in shuffled:
        sealed.extend(plane.push(record))
    sealed.extend(plane.finish(emit_partial_tail=False))
    assert plane.stats().readmitted > 0
    survivors = fresh_seqs(sealed)
    assert len(survivors) == len(set(survivors))
    assert set(range(3)) <= set(survivors)  # the readmitted early seqs


def test_stats_snapshot_is_frozen_against_later_pushes():
    plane = make_plane(size=4)
    records = seq_records(12)
    for record in records[:6]:
        plane.push(record)
    snapshot = plane.stats()
    assert snapshot.providers[0].records == 2
    for record in records[6:]:
        plane.push(record)
    assert snapshot.providers[0].records == 2  # not aliased to live gates
    assert plane.stats().providers[0].records == 4


def test_emission_order_is_monotone_per_revision():
    records = seq_records(120)
    shuffled = list(skewed(records, 15, seed=9))
    sealed, _ = run_plane(
        shuffled, kind="sliding", size=10, step=5, delay=2, policy="upsert"
    )
    regular = [w.index for w in sealed if w.revision == 0]
    assert regular == sorted(regular)


# ----------------------------------------------------------------------
# gates, stats, validation
# ----------------------------------------------------------------------
def test_round_robin_provider_attribution_and_counters():
    _, plane = run_plane(seq_records(30), size=8, k=3)
    assert [g.records for g in plane.gates] == [10, 10, 10]
    stats = plane.stats()
    assert stats.records == 30 and stats.late == 0 and stats.max_skew == 0


def test_explicit_provider_attribution_wins():
    records = [
        StreamRecord(
            x=np.array([float(i)]), y=0, time=float(i), seq=i, provider=2
        )
        for i in range(8)
    ]
    _, plane = run_plane(records, size=4, k=3)
    assert [g.records for g in plane.gates] == [0, 0, 8]


def test_unstamped_records_get_arrival_order_seqs():
    records = [
        StreamRecord(x=np.array([float(i)]), y=0, time=float(i))
        for i in range(10)
    ]
    sealed, plane = run_plane(records, size=4)
    assert plane.frontier == 9
    assert fresh_seqs(sealed) == list(range(10))


def test_per_provider_late_counters():
    records = seq_records(100)
    shuffled = list(skewed(records, 20, seed=3))
    _, plane = run_plane(shuffled, size=8, delay=0, policy="drop", k=4)
    stats = plane.stats()
    assert stats.late == sum(g.late for g in plane.gates)
    assert stats.max_skew == max(g.max_skew for g in plane.gates)
    payload = stats.to_dict()
    assert len(payload["providers"]) == 4
    assert payload["late"] == stats.late


def test_validation_and_lifecycle():
    with pytest.raises(ValueError, match="watermark_delay"):
        make_plane(delay=-1)
    with pytest.raises(ValueError, match="late policy"):
        make_plane(policy="vanish")
    with pytest.raises(ValueError, match="window kind"):
        make_plane(kind="hopping")
    assert LATE_POLICIES == ("drop", "readmit", "upsert")

    plane = make_plane()
    plane.finish()
    with pytest.raises(RuntimeError, match="finished"):
        plane.push(seq_records(1)[0])
    assert plane.finish() == []

    bad_provider = StreamRecord(
        x=np.array([0.0]), y=0, time=0.0, seq=0, provider=9
    )
    with pytest.raises(ValueError, match="provider"):
        make_plane().push(bad_provider)
