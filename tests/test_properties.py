"""Property-based tests (hypothesis) on the core invariants.

Each property here is one of the paper's load-bearing identities, checked
over generated inputs rather than hand-picked examples:

* orthogonality and isometry of sampled rotations;
* the space-adaptation identity ``Y_{i->t} = G_t(X) + Delta_it``;
* exchange-plan structural invariants for every k;
* risk-model monotonicity;
* serializer round-trips;
* partitioner partition-of-the-rows invariants.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import complementary_noise, compute_adaptor
from repro.core.normalization import MinMaxNormalizer, ZScoreNormalizer
from repro.core.perturbation import sample_perturbation
from repro.core.privacy import (
    average_privacy_guarantee,
    minimum_privacy_guarantee,
)
from repro.core.protocol import draw_exchange_plan
from repro.core.risk import minimum_parties, risk_of_breach, sap_risk
from repro.core.rotation import haar_orthogonal, is_orthogonal, swap_rows
from repro.datasets.partition import partition_by_class, partition_uniform
from repro.datasets.schema import Dataset
from repro.simnet import crypto
from repro.simnet.messages import deserialize_payload, serialize_payload

# Bounded, deterministic profiles keep the suite fast.
FAST = settings(max_examples=25, deadline=None)


# ----------------------------------------------------------------------
# rotations
# ----------------------------------------------------------------------
@FAST
@given(d=st.integers(1, 12), seed=st.integers(0, 10_000))
def test_haar_rotations_are_orthogonal(d, seed):
    R = haar_orthogonal(d, np.random.default_rng(seed))
    assert is_orthogonal(R)


@FAST
@given(d=st.integers(2, 10), seed=st.integers(0, 10_000))
def test_rotations_preserve_distances(d, seed):
    rng = np.random.default_rng(seed)
    R = haar_orthogonal(d, rng)
    x, z = rng.normal(size=d), rng.normal(size=d)
    assert np.isclose(np.linalg.norm(R @ x - R @ z), np.linalg.norm(x - z))


@FAST
@given(
    d=st.integers(2, 10),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_row_swaps_preserve_orthogonality(d, seed, data):
    R = haar_orthogonal(d, np.random.default_rng(seed))
    i = data.draw(st.integers(0, d - 1))
    j = data.draw(st.integers(0, d - 1))
    assert is_orthogonal(swap_rows(R, i, j))


# ----------------------------------------------------------------------
# space adaptation identity
# ----------------------------------------------------------------------
@FAST
@given(
    d=st.integers(2, 8),
    n=st.integers(2, 30),
    seed=st.integers(0, 10_000),
    sigma=st.floats(0.0, 0.3),
)
def test_adaptation_identity(d, n, seed, sigma):
    """Adapting a perturbed table equals perturbing with the target plus the
    complementary noise — for any dimensions, sizes, and noise levels."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(d, n))
    source = sample_perturbation(d, rng, noise_sigma=sigma)
    target = sample_perturbation(d, rng, noise_sigma=0.0)
    if sigma > 0:
        Y, noise = source.apply(X, rng=rng, return_noise=True)
    else:
        Y = source.apply(X)
        noise = np.zeros_like(np.asarray(Y))
    adapted = compute_adaptor(source, target).apply(np.asarray(Y))
    expected = target.transform_clean(X) + complementary_noise(
        source, target, noise
    )
    np.testing.assert_allclose(adapted, expected, atol=1e-8)


@FAST
@given(d=st.integers(2, 8), seed=st.integers(0, 10_000))
def test_adaptor_inverse_roundtrip(d, seed):
    """Adapting i->t then t->i is the identity map."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(d, 10))
    a = sample_perturbation(d, rng)
    b = sample_perturbation(d, rng)
    Y = a.transform_clean(X)
    roundtrip = compute_adaptor(b, a).apply(compute_adaptor(a, b).apply(Y))
    np.testing.assert_allclose(roundtrip, Y, atol=1e-8)


# ----------------------------------------------------------------------
# exchange plan
# ----------------------------------------------------------------------
@FAST
@given(k=st.integers(2, 20), seed=st.integers(0, 10_000))
def test_exchange_plan_invariants(k, seed):
    plan = draw_exchange_plan(k, np.random.default_rng(seed))
    plan.validate()
    # Delivered exactly once, coordinator starved, tags unique.
    delivered = [
        s for r in range(k) for s in plan.sources_received_by(r)
    ]
    assert sorted(delivered) == list(range(k))
    assert plan.sources_received_by(plan.coordinator) == []
    assert len(set(plan.tags)) == k


# ----------------------------------------------------------------------
# risk model
# ----------------------------------------------------------------------
@FAST
@given(
    pi=st.floats(0.0, 1.0),
    s=st.floats(0.0, 2.0),
    rho=st.floats(0.0, 1.0),
    b=st.floats(0.01, 1.0),
)
def test_risk_is_a_probability(pi, s, rho, b):
    risk = risk_of_breach(pi, s, rho, b)
    assert 0.0 <= risk <= 1.0


@FAST
@given(
    b=st.floats(0.1, 1.0),
    rho_fraction=st.floats(0.0, 1.0),
    s=st.floats(0.0, 1.5),
    k=st.integers(2, 50),
)
def test_sap_risk_non_increasing_in_k(b, rho_fraction, s, k):
    rho = b * rho_fraction
    assert sap_risk(b, rho, s, k + 1) <= sap_risk(b, rho, s, k) + 1e-12


@FAST
@given(
    s0=st.floats(0.0, 0.99),
    opt_rate=st.floats(0.01, 1.0),
)
def test_minimum_parties_bound_is_sufficient(s0, opt_rate):
    """At the returned k, the miner-view risk is within the tolerance
    implied by s0 (the defining property of the bound)."""
    k = minimum_parties(s0, opt_rate, k_cap=10**6)
    assert k >= 2
    miner_view = (1 - s0 * opt_rate) / (k - 1)
    assert miner_view <= (1 - s0) + 1e-9


@FAST
@given(
    s0=st.floats(0.5, 0.99),
    opt_rate=st.floats(0.5, 1.0),
)
def test_minimum_parties_bound_is_tight(s0, opt_rate):
    """k-1 parties would violate the tolerance (unless already at the
    k=2 floor)."""
    k = minimum_parties(s0, opt_rate, k_cap=10**6)
    if k > 2:
        miner_view = (1 - s0 * opt_rate) / (k - 2)
        assert miner_view > (1 - s0) - 1e-9


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**40), 2**40),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@FAST
@given(payload=st.dictionaries(st.text(max_size=8), json_like, max_size=5))
def test_payload_roundtrip(payload):
    assert deserialize_payload(serialize_payload(payload)) == payload


@FAST
@given(
    rows=st.integers(1, 20),
    cols=st.integers(0, 10),
    seed=st.integers(0, 1000),
)
def test_array_roundtrip(rows, cols, seed):
    array = np.random.default_rng(seed).normal(size=(rows, cols))
    result = deserialize_payload(serialize_payload({"a": array}))
    np.testing.assert_array_equal(result["a"], array)


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
def _toy_dataset(n_rows, n_classes, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_rows, 3))
    y = np.concatenate(
        [np.full(n_rows // n_classes, c) for c in range(n_classes)]
        + [np.zeros(n_rows % n_classes, dtype=int)]
    ).astype(int)
    return Dataset(name="hyp", X=X, y=y[rng.permutation(n_rows)])


@FAST
@given(
    n_rows=st.integers(20, 120),
    k=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_uniform_partition_is_a_partition(n_rows, k, seed):
    ds = _toy_dataset(n_rows, 2, seed)
    parts = partition_uniform(ds, k, np.random.default_rng(seed))
    combined = np.sort(np.concatenate(parts))
    np.testing.assert_array_equal(combined, np.arange(n_rows))


@FAST
@given(
    n_rows=st.integers(30, 120),
    k=st.integers(2, 5),
    n_classes=st.integers(2, 4),
    seed=st.integers(0, 1000),
)
def test_class_partition_is_a_partition(n_rows, k, n_classes, seed):
    ds = _toy_dataset(n_rows, n_classes, seed)
    parts = partition_by_class(ds, k, np.random.default_rng(seed))
    combined = np.sort(np.concatenate(parts))
    np.testing.assert_array_equal(combined, np.arange(n_rows))
    assert all(len(p) >= 2 for p in parts)


# ----------------------------------------------------------------------
# transport cipher
# ----------------------------------------------------------------------
@FAST
@given(
    plaintext=st.binary(max_size=4096),
    a=st.text(min_size=1, max_size=12),
    b=st.text(min_size=1, max_size=12),
    seed=st.integers(0, 10_000),
)
def test_cipher_roundtrip(plaintext, a, b, seed):
    key = crypto.derive_key(a, b)
    ciphertext = crypto.encrypt(key, plaintext, np.random.default_rng(seed))
    assert crypto.decrypt(key, ciphertext) == plaintext


@FAST
@given(
    plaintext=st.binary(min_size=1, max_size=512),
    seed=st.integers(0, 10_000),
    flip=st.integers(0, 10**9),
)
def test_cipher_detects_any_single_bit_flip(plaintext, seed, flip):
    key = crypto.derive_key("x", "y")
    ciphertext = crypto.encrypt(key, plaintext, np.random.default_rng(seed))
    position = flip % (len(ciphertext.body) * 8)
    byte_index, bit = divmod(position, 8)
    tampered_body = bytearray(ciphertext.body)
    tampered_body[byte_index] ^= 1 << bit
    tampered = crypto.Ciphertext(
        nonce=ciphertext.nonce, body=bytes(tampered_body), tag=ciphertext.tag
    )
    try:
        crypto.decrypt(key, tampered)
    except Exception:
        return
    raise AssertionError("bit flip went undetected")


# ----------------------------------------------------------------------
# normalization
# ----------------------------------------------------------------------
@FAST
@given(
    rows=st.integers(2, 40),
    cols=st.integers(1, 8),
    seed=st.integers(0, 10_000),
    scale=st.floats(0.1, 100.0),
)
def test_minmax_roundtrip_and_range(rows, cols, seed, scale):
    X = np.random.default_rng(seed).normal(size=(rows, cols)) * scale
    normalizer = MinMaxNormalizer().fit(X)
    out = normalizer.transform(X)
    assert out.min() >= -1e-12 and out.max() <= 1.0 + 1e-12
    np.testing.assert_allclose(
        normalizer.inverse_transform(out), X, atol=1e-8 * scale
    )


@FAST
@given(
    rows=st.integers(3, 40),
    cols=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_zscore_roundtrip(rows, cols, seed):
    X = np.random.default_rng(seed).normal(size=(rows, cols)) * 7 + 3
    normalizer = ZScoreNormalizer().fit(X)
    np.testing.assert_allclose(
        normalizer.inverse_transform(normalizer.transform(X)), X, atol=1e-8
    )


# ----------------------------------------------------------------------
# end-to-end classifier invariance (the paper's utility claim)
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    d=st.integers(2, 6),
    n_per_class=st.integers(8, 20),
    seed=st.integers(0, 10_000),
)
def test_knn_rotation_invariance_property(d, n_per_class, seed):
    """For ANY dataset shape and ANY rotation+translation, KNN predictions
    on transformed probes match exactly — the paper's core utility claim as
    a universally-quantified property."""
    from repro.core.perturbation import perturb_rows
    from repro.mining.knn import KNNClassifier

    rng = np.random.default_rng(seed)
    X = np.vstack(
        [
            rng.normal(size=(n_per_class, d)),
            rng.normal(size=(n_per_class, d)) + 2.0,
        ]
    )
    y = np.array([0] * n_per_class + [1] * n_per_class)
    perturbation = sample_perturbation(d, rng, noise_sigma=0.0)
    probes = rng.normal(size=(15, d))

    plain = KNNClassifier(n_neighbors=3).fit(X, y)
    rotated = KNNClassifier(n_neighbors=3).fit(perturb_rows(perturbation, X), y)
    np.testing.assert_array_equal(
        plain.predict(probes),
        rotated.predict(perturb_rows(perturbation, probes)),
    )


# ----------------------------------------------------------------------
# privacy metrics
# ----------------------------------------------------------------------
@FAST
@given(
    d=st.integers(1, 8),
    n=st.integers(2, 60),
    seed=st.integers(0, 10_000),
    sigma=st.floats(0.0, 2.0),
)
def test_privacy_metric_bounds(d, n, seed, sigma):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(d, n))
    X_hat = X + rng.normal(scale=sigma or 1e-12, size=(d, n))
    minimum = minimum_privacy_guarantee(X, X_hat)
    average = average_privacy_guarantee(X, X_hat)
    assert 0.0 <= minimum <= average
    # Perfect reconstruction is always zero privacy.
    assert minimum_privacy_guarantee(X, X.copy()) == 0.0
