"""End-to-end streaming session: drift response, trust, accuracy bound."""

import numpy as np
import pytest

from repro.streaming import (
    StreamConfig,
    TrustChange,
    make_stream,
    run_stream_session,
)

N_WINDOWS = 16
WINDOW = 48


def run(kind, config=None, dataset="wine", seed=0, **stream_kwargs):
    source = make_stream(
        dataset, kind=kind, n_records=N_WINDOWS * WINDOW, seed=seed, **stream_kwargs
    )
    return run_stream_session(
        source, config or StreamConfig(k=3, window_size=WINDOW, seed=0)
    )


def test_stationary_stream_never_readapts():
    result = run("stationary")
    assert result.readaptations == 0
    assert len(result.events) == 1 and result.events[0].reason == "initial"
    assert len(result.windows) == N_WINDOWS
    assert result.records_processed == N_WINDOWS * WINDOW


def test_abrupt_drift_triggers_readaptation():
    result = run("abrupt")
    assert result.readaptations >= 1
    drift_events = [e for e in result.events if e.reason == "drift"]
    assert drift_events
    expected_window = (N_WINDOWS * WINDOW // 2) // WINDOW
    assert drift_events[0].window == expected_window
    assert drift_events[0].statistic > 0


def test_deviation_stays_within_paper_style_bound():
    """Online prequential deviation after re-adaptation stays small for the
    rotation-invariant KNN miner (the paper's Figures 5/6 band is a few
    points; allow a conservative 5 for the smaller online windows)."""
    for kind in ("stationary", "abrupt"):
        result = run(kind)
        assert abs(result.deviation) < 5.0
        # Post-drift windows individually stay reasonable too.
        post = [w for w in result.windows if w.index > N_WINDOWS // 2 + 1]
        for w in post:
            assert abs(w.deviation) < 15.0


def test_trust_change_forces_renegotiation_on_schedule():
    config = StreamConfig(
        k=3,
        window_size=WINDOW,
        trust_changes=(TrustChange(window=5, party=0, trust=0.5),),
        seed=0,
    )
    result = run("stationary", config)
    assert result.readaptations == 1
    event = [e for e in result.events if e.reason == "trust"][0]
    assert event.window == 5


def test_trust_change_at_window_zero_shapes_initial_negotiation():
    """A trust change scheduled at the very first window is not dropped:
    it is folded into the initial negotiation's noise levels (there is no
    separate 'trust' event because only one negotiation happens)."""
    config = StreamConfig(
        k=3,
        window_size=WINDOW,
        trust_changes=tuple(
            TrustChange(window=0, party=p, trust=0.5) for p in range(3)
        ),
        seed=0,
    )
    result = run("stationary", config)
    assert [e.reason for e in result.events] == ["initial"]
    baseline = run("stationary")
    # Lower trust means more noise for every party, which the fast-suite
    # guarantee of the initial epoch reflects.
    assert result.events[0].privacy_guarantee is not None
    assert (
        result.events[0].privacy_guarantee
        != baseline.events[0].privacy_guarantee
    )


def test_sliding_windows_score_each_record_once():
    config = StreamConfig(
        k=3, window_size=WINDOW, window_kind="sliding",
        window_step=WINDOW // 3, seed=0,
    )
    result = run("stationary", config)
    scored = sum(w.n_records for w in result.windows)
    assert scored <= result.records_processed
    assert result.windows[0].n_records == WINDOW
    assert all(w.n_records == WINDOW // 3 for w in result.windows[1:])


def test_negotiations_are_charged_to_the_network():
    result = run("abrupt")
    # Each negotiation sends 2 messages to each non-coordinator provider
    # (assignment + target params) and receives one adaptor back.
    per_negotiation = 3 * (result.config.k - 1)
    assert result.messages_sent == per_negotiation * len(result.events)
    assert result.bytes_sent > 0
    assert all(e.virtual_duration > 0 for e in result.events)


def test_privacy_guarantee_refreshed_per_epoch():
    result = run("abrupt")
    guarantees = [e.privacy_guarantee for e in result.events]
    assert all(g is not None and 0.0 <= g for g in guarantees)
    off = StreamConfig(k=3, window_size=WINDOW, compute_privacy=False, seed=0)
    result_off = run("abrupt", off)
    assert all(e.privacy_guarantee is None for e in result_off.events)


def test_linear_svm_stream_runs_and_stays_close():
    config = StreamConfig(k=3, window_size=WINDOW, classifier="linear_svm", seed=0)
    result = run("stationary", config, dataset="iris")
    assert len(result.windows) == N_WINDOWS
    assert abs(result.deviation) < 10.0


def test_result_summary_and_series():
    result = run("abrupt")
    text = result.summary()
    for fragment in ("re-adaptations", "throughput", "deviation", "privacy"):
        assert fragment in text
    series = result.deviation_series()
    assert len(series) == N_WINDOWS
    assert result.throughput > 0
    assert result.mean_readapt_latency >= 0


def test_deterministic_under_seeds():
    a = run("abrupt")
    b = run("abrupt")
    assert a.accuracy_perturbed == b.accuracy_perturbed
    assert a.accuracy_baseline == b.accuracy_baseline
    assert [w.drift_statistic for w in a.windows] == [
        w.drift_statistic for w in b.windows
    ]


# ----------------------------------------------------------------------
# event-time ingestion
# ----------------------------------------------------------------------
def event_config(**overrides):
    base = dict(k=3, window_size=WINDOW, compute_privacy=False, seed=0)
    base.update(overrides)
    return StreamConfig(**base)


def test_out_of_order_within_watermark_matches_in_order_run():
    """Lateness <= watermark under readmit: identical session, bit for bit."""
    in_order = run("abrupt", event_config())
    skewed_run = run(
        "abrupt",
        event_config(skew=9, watermark_delay=9, late_policy="readmit"),
    )
    assert skewed_run.ingest.late == 0
    assert 0 < skewed_run.ingest.max_skew <= 9
    assert skewed_run.accuracy_perturbed == in_order.accuracy_perturbed
    assert skewed_run.accuracy_baseline == in_order.accuracy_baseline
    assert skewed_run.deviation_series() == in_order.deviation_series()
    assert skewed_run.messages_sent == in_order.messages_sent
    assert skewed_run.bytes_sent == in_order.bytes_sent
    assert skewed_run.data_messages_sent == in_order.data_messages_sent
    assert skewed_run.data_bytes_sent == in_order.data_bytes_sent
    assert [w.drift_statistic for w in skewed_run.windows] == [
        w.drift_statistic for w in in_order.windows
    ]


def test_skewed_session_identical_across_shard_counts_and_backends():
    reference = run(
        "stationary",
        event_config(skew=12, watermark_delay=4, late_policy="readmit"),
    )
    assert reference.ingest.late > 0  # the scenario actually exercises lateness
    for shards, backend in ((3, "serial"), (4, "thread")):
        result = run(
            "stationary",
            event_config(
                skew=12, watermark_delay=4, late_policy="readmit",
                shards=shards, shard_backend=backend,
            ),
        )
        assert result.accuracy_perturbed == reference.accuracy_perturbed
        assert result.deviation_series() == reference.deviation_series()
        assert result.ingest.to_dict() == reference.ingest.to_dict()


def test_drop_policy_discards_and_accounts():
    result = run("stationary", event_config(skew=12, late_policy="drop"))
    assert result.ingest.late > 0
    assert result.ingest.dropped == result.ingest.late
    scored = sum(w.n_records for w in result.windows)
    assert scored == result.records_processed - result.ingest.dropped


def test_readmit_policy_scores_every_record():
    result = run("stationary", event_config(skew=12, late_policy="readmit"))
    assert result.ingest.readmitted == result.ingest.late > 0
    assert sum(w.n_records for w in result.windows) == result.records_processed


def test_upsert_policy_emits_correction_windows():
    result = run("stationary", event_config(skew=12, late_policy="upsert"))
    corrections = [w for w in result.windows if w.revision > 0]
    assert result.ingest.upserted == result.ingest.late > 0
    assert corrections
    assert all(not w.readapted for w in corrections)
    assert sum(w.n_records for w in result.windows) == result.records_processed


def test_heavy_skew_tiny_windows_survive_every_policy():
    # Regression: with window_size 2 and skew far beyond the watermark,
    # corrections can outrun the first regular window (epoch not yet
    # negotiated) and sealed windows can be degenerate (1 row) — both
    # used to crash the driver (AssertionError / drift-rebase ValueError).
    for policy, seed, skew in (("upsert", 1, 30), ("upsert", 0, 16),
                               ("drop", 2, 24), ("readmit", 3, 24)):
        source = make_stream("iris", n_records=120, seed=seed)
        result = run_stream_session(
            source,
            StreamConfig(k=3, window_size=2, skew=skew, watermark_delay=0,
                         late_policy=policy, seed=seed,
                         compute_privacy=False),
        )
        assert result.ingest.late > 0


def test_in_order_partial_tail_is_dropped_like_the_legacy_driver():
    # 100 records / 32-row windows: the legacy driver scored exactly 3
    # windows (96 records) and silently dropped the remainder; the
    # event-time plane must not start scoring the tail.
    source = make_stream("wine", n_records=100, seed=2)
    result = run_stream_session(
        source, StreamConfig(k=3, window_size=32, seed=4,
                             compute_privacy=False)
    )
    assert len(result.windows) == 3
    assert sum(w.n_records for w in result.windows) == 96
    assert result.records_processed == 100


def test_ingest_counters_surface_in_summary_and_json():
    result = run("stationary", event_config(skew=12, late_policy="readmit"))
    assert "ingestion" in result.summary()
    payload = result.to_dict()
    assert payload["ingest"]["late"] == result.ingest.late
    assert payload["ingest"]["max_skew"] == result.ingest.max_skew
    providers = payload["ingest"]["providers"]
    assert [p["name"] for p in providers] == [
        "provider-0", "provider-1", "coordinator"
    ]
    assert sum(p["records"] for p in providers) == result.records_processed
    assert len(payload["provider_records"]) == result.config.k


def test_event_time_config_validation():
    with pytest.raises(ValueError, match="watermark_delay"):
        StreamConfig(watermark_delay=-1)
    with pytest.raises(ValueError, match="late policy"):
        StreamConfig(late_policy="vanish")
    with pytest.raises(ValueError, match="skew"):
        StreamConfig(skew=-2)


def test_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(k=1)
    with pytest.raises(ValueError):
        StreamConfig(window_size=1)
    with pytest.raises(ValueError):
        TrustChange(window=0, party=0, trust=0.0)
    with pytest.raises(ValueError):
        TrustChange(window=-1, party=0, trust=0.5)
    config = StreamConfig(
        k=3, trust_changes=(TrustChange(window=0, party=7, trust=0.5),)
    )
    source = make_stream("iris", n_records=64, seed=0)
    with pytest.raises(ValueError):
        run_stream_session(source, config)
