"""End-to-end streaming session: drift response, trust, accuracy bound."""

import numpy as np
import pytest

from repro.streaming import (
    StreamConfig,
    TrustChange,
    make_stream,
    run_stream_session,
)

N_WINDOWS = 16
WINDOW = 48


def run(kind, config=None, dataset="wine", seed=0, **stream_kwargs):
    source = make_stream(
        dataset, kind=kind, n_records=N_WINDOWS * WINDOW, seed=seed, **stream_kwargs
    )
    return run_stream_session(
        source, config or StreamConfig(k=3, window_size=WINDOW, seed=0)
    )


def test_stationary_stream_never_readapts():
    result = run("stationary")
    assert result.readaptations == 0
    assert len(result.events) == 1 and result.events[0].reason == "initial"
    assert len(result.windows) == N_WINDOWS
    assert result.records_processed == N_WINDOWS * WINDOW


def test_abrupt_drift_triggers_readaptation():
    result = run("abrupt")
    assert result.readaptations >= 1
    drift_events = [e for e in result.events if e.reason == "drift"]
    assert drift_events
    expected_window = (N_WINDOWS * WINDOW // 2) // WINDOW
    assert drift_events[0].window == expected_window
    assert drift_events[0].statistic > 0


def test_deviation_stays_within_paper_style_bound():
    """Online prequential deviation after re-adaptation stays small for the
    rotation-invariant KNN miner (the paper's Figures 5/6 band is a few
    points; allow a conservative 5 for the smaller online windows)."""
    for kind in ("stationary", "abrupt"):
        result = run(kind)
        assert abs(result.deviation) < 5.0
        # Post-drift windows individually stay reasonable too.
        post = [w for w in result.windows if w.index > N_WINDOWS // 2 + 1]
        for w in post:
            assert abs(w.deviation) < 15.0


def test_trust_change_forces_renegotiation_on_schedule():
    config = StreamConfig(
        k=3,
        window_size=WINDOW,
        trust_changes=(TrustChange(window=5, party=0, trust=0.5),),
        seed=0,
    )
    result = run("stationary", config)
    assert result.readaptations == 1
    event = [e for e in result.events if e.reason == "trust"][0]
    assert event.window == 5


def test_trust_change_at_window_zero_shapes_initial_negotiation():
    """A trust change scheduled at the very first window is not dropped:
    it is folded into the initial negotiation's noise levels (there is no
    separate 'trust' event because only one negotiation happens)."""
    config = StreamConfig(
        k=3,
        window_size=WINDOW,
        trust_changes=tuple(
            TrustChange(window=0, party=p, trust=0.5) for p in range(3)
        ),
        seed=0,
    )
    result = run("stationary", config)
    assert [e.reason for e in result.events] == ["initial"]
    baseline = run("stationary")
    # Lower trust means more noise for every party, which the fast-suite
    # guarantee of the initial epoch reflects.
    assert result.events[0].privacy_guarantee is not None
    assert (
        result.events[0].privacy_guarantee
        != baseline.events[0].privacy_guarantee
    )


def test_sliding_windows_score_each_record_once():
    config = StreamConfig(
        k=3, window_size=WINDOW, window_kind="sliding",
        window_step=WINDOW // 3, seed=0,
    )
    result = run("stationary", config)
    scored = sum(w.n_records for w in result.windows)
    assert scored <= result.records_processed
    assert result.windows[0].n_records == WINDOW
    assert all(w.n_records == WINDOW // 3 for w in result.windows[1:])


def test_negotiations_are_charged_to_the_network():
    result = run("abrupt")
    # Each negotiation sends 2 messages to each non-coordinator provider
    # (assignment + target params) and receives one adaptor back.
    per_negotiation = 3 * (result.config.k - 1)
    assert result.messages_sent == per_negotiation * len(result.events)
    assert result.bytes_sent > 0
    assert all(e.virtual_duration > 0 for e in result.events)


def test_privacy_guarantee_refreshed_per_epoch():
    result = run("abrupt")
    guarantees = [e.privacy_guarantee for e in result.events]
    assert all(g is not None and 0.0 <= g for g in guarantees)
    off = StreamConfig(k=3, window_size=WINDOW, compute_privacy=False, seed=0)
    result_off = run("abrupt", off)
    assert all(e.privacy_guarantee is None for e in result_off.events)


def test_linear_svm_stream_runs_and_stays_close():
    config = StreamConfig(k=3, window_size=WINDOW, classifier="linear_svm", seed=0)
    result = run("stationary", config, dataset="iris")
    assert len(result.windows) == N_WINDOWS
    assert abs(result.deviation) < 10.0


def test_result_summary_and_series():
    result = run("abrupt")
    text = result.summary()
    for fragment in ("re-adaptations", "throughput", "deviation", "privacy"):
        assert fragment in text
    series = result.deviation_series()
    assert len(series) == N_WINDOWS
    assert result.throughput > 0
    assert result.mean_readapt_latency >= 0


def test_deterministic_under_seeds():
    a = run("abrupt")
    b = run("abrupt")
    assert a.accuracy_perturbed == b.accuracy_perturbed
    assert a.accuracy_baseline == b.accuracy_baseline
    assert [w.drift_statistic for w in a.windows] == [
        w.drift_statistic for w in b.windows
    ]


def test_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(k=1)
    with pytest.raises(ValueError):
        StreamConfig(window_size=1)
    with pytest.raises(ValueError):
        TrustChange(window=0, party=0, trust=0.0)
    with pytest.raises(ValueError):
        TrustChange(window=-1, party=0, trust=0.5)
    config = StreamConfig(
        k=3, trust_changes=(TrustChange(window=0, party=7, trust=0.5),)
    )
    source = make_stream("iris", n_records=64, seed=0)
    with pytest.raises(ValueError):
        run_stream_session(source, config)
