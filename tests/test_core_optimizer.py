"""Tests for the randomized perturbation optimizer."""

import numpy as np
import pytest

from repro.attacks.resilience import fast_suite
from repro.core.optimizer import OptimizationResult, PerturbationOptimizer
from repro.core.perturbation import sample_perturbation


@pytest.fixture
def X(rng):
    # Anisotropic columns make privacy vary across rotations.
    base = rng.uniform(0, 1, size=(4, 120))
    base[0] *= 0.2
    base[2] *= 3.0
    return base


def make_optimizer(**overrides):
    params = dict(n_rounds=5, local_steps=4, noise_sigma=0.05, seed=0)
    params.update(overrides)
    return PerturbationOptimizer(**params)


class TestOptimize:
    def test_result_structure(self, X):
        result = make_optimizer().optimize(X)
        assert isinstance(result, OptimizationResult)
        assert len(result.round_privacies) == 5
        assert len(result.random_privacies) == 5
        assert result.best_privacy == pytest.approx(max(result.round_privacies))

    def test_best_is_max_of_rounds(self, X):
        result = make_optimizer().optimize(X)
        assert result.b_hat == pytest.approx(max(result.round_privacies))
        assert result.rho_bar == pytest.approx(
            np.mean(result.round_privacies)
        )

    def test_optimized_never_worse_than_its_restart(self, X):
        result = make_optimizer().optimize(X)
        for optimized, random in zip(
            result.round_privacies, result.random_privacies
        ):
            assert optimized >= random - 1e-12

    def test_local_search_improves_on_average(self, X):
        no_search = make_optimizer(local_steps=0, n_rounds=8).optimize(X)
        with_search = make_optimizer(local_steps=8, n_rounds=8).optimize(X)
        assert with_search.rho_bar >= no_search.rho_bar

    def test_optimality_rate_in_unit_interval(self, X):
        result = make_optimizer().optimize(X)
        assert 0.0 < result.optimality_rate <= 1.0

    def test_deterministic_under_seed(self, X):
        a = make_optimizer(seed=42).optimize(X)
        b = make_optimizer(seed=42).optimize(X)
        assert a.round_privacies == b.round_privacies
        np.testing.assert_array_equal(a.best.rotation, b.best.rotation)

    def test_different_seeds_differ(self, X):
        a = make_optimizer(seed=1).optimize(X)
        b = make_optimizer(seed=2).optimize(X)
        assert a.round_privacies != b.round_privacies

    def test_best_perturbation_carries_noise_level(self, X):
        result = make_optimizer(noise_sigma=0.07).optimize(X)
        assert result.best.noise_sigma == 0.07

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            make_optimizer().optimize(np.zeros(10))

    def test_validation_of_budgets(self):
        with pytest.raises(ValueError):
            make_optimizer(n_rounds=0)
        with pytest.raises(ValueError):
            make_optimizer(local_steps=-1)

    def test_custom_suite_is_used(self, X):
        suite = fast_suite(known_fraction=0.0)  # no insider knowledge
        result = make_optimizer(suite=suite).optimize(X)
        assert len(result.round_privacies) == 5


class TestRandomBaseline:
    def test_baseline_count(self, X):
        values = make_optimizer().random_baseline(X, n_samples=7)
        assert len(values) == 7

    def test_baseline_values_positive(self, X):
        values = make_optimizer().random_baseline(X, n_samples=5)
        assert all(v >= 0 for v in values)

    def test_figure2_shape_optimized_dominates_random(self, X):
        """The core Figure 2 claim at unit-test scale."""
        optimizer = make_optimizer(n_rounds=8, local_steps=6)
        result = optimizer.optimize(X)
        assert np.mean(result.round_privacies) > np.mean(
            result.random_privacies
        )


class TestResultSummary:
    def test_summary_mentions_key_stats(self, X):
        result = make_optimizer().optimize(X)
        text = result.summary()
        assert "optimality rate" in text
        assert "b_hat" in text
