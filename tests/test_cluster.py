"""Cluster serving: placement, live migration, rebalance, merged stats.

The governing invariant, swept like the checkpoint layer's: any schedule
of migrations across replicas x backends x shards x plans x placement
policies yields results **bit-identical** to the unmigrated
single-engine run, and the merged :class:`ClusterStats` conserves every
records/traffic/budget counter exactly (cluster totals equal per-replica
sums).  The edge cases each get a seat: migrating during a trust
re-negotiation round, migrating an already-parked session, a destination
at ``max_inflight``, and per-tenant budgets that must be charged once no
matter how many replicas a session visits.
"""

import os

import pytest

from repro.cluster import (
    ClusterController,
    ClusterError,
    hash_placement,
    least_loaded_placement,
    resolve_placement,
    tenant_placement,
)
from repro.serve import (
    AdmissionError,
    MiningService,
    SessionSpec,
    TenantPolicy,
)
from repro.streaming import TrustChange


def _stream_spec(seed=5, tenant="acme", windows=10, **knobs):
    return SessionSpec(
        kind="stream", dataset="wine", k=3, windows=windows, window_size=32,
        compute_privacy=False, seed=seed, tenant=tenant, **knobs
    )


def _fingerprint(result):
    """Everything deterministic a stream result reports, bit for bit."""
    return (
        result.deviation_series(),
        result.messages_sent,
        result.bytes_sent,
        result.data_messages_sent,
        result.data_bytes_sent,
        result.records_processed,
    )


def _single_engine(spec):
    with MiningService(max_inflight=2) as service:
        return service.run([spec])[0]


def _assert_conserved(stats):
    """Cluster totals must equal per-replica sums exactly."""
    per = stats.per_replica
    assert stats.records == sum(s.records for s in per)
    assert stats.messages == sum(s.messages for s in per)
    assert stats.bytes == sum(s.bytes for s in per)
    assert stats.completed == sum(s.completed for s in per)
    assert stats.failed == sum(s.failed for s in per)
    assert stats.cancelled == sum(s.cancelled for s in per)
    assert stats.evicted == sum(s.evicted for s in per)
    assert stats.active == sum(s.active for s in per)
    # Every migration hop re-submits on a replica, so replica-level
    # submission counts exceed the cluster's by exactly the hop count.
    assert sum(s.submitted for s in per) == stats.submitted + stats.migrations
    # Tenant merges conserve traffic too.
    merged = {t.tenant: t for t in stats.tenants}
    for key in ("records", "messages", "bytes"):
        for tenant, row in merged.items():
            assert getattr(row, key) == sum(
                getattr(t, key)
                for s in per
                for t in s.tenants
                if t.tenant == tenant
            )


# ----------------------------------------------------------------------
# the bit-identity property, swept
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "backend,shards,plan",
    [
        ("serial", 1, "round_robin"),
        ("thread", 4, "hash"),
        ("thread", 4, "party"),
    ],
)
@pytest.mark.parametrize("placement", ["hash", "least_loaded", "tenant"])
def test_migration_schedule_bit_identical_and_stats_conserved(
    tmp_path, backend, shards, plan, placement
):
    spec = _stream_spec(shard_backend=backend, shards=shards, shard_plan=plan)
    unbroken = _single_engine(spec)
    with ClusterController(
        replicas=2,
        placement=placement,
        shard_backend=backend,
        shard_workers=shards,
        checkpoint_dir=str(tmp_path),
    ) as cluster:
        session = cluster.submit(spec, checkpoint_every=2)
        # A two-hop schedule: away and back again, mid-run.
        first = cluster.migrate(session.session_id, 1 - session.replica)
        hops = 0 if first is None else 1
        if first is not None and not session.done():
            try:
                second = cluster.migrate(session.session_id, 1 - first)
            except ClusterError:
                second = None  # settled under the migrate call
            hops += 0 if second is None else 1
        result = session.result(timeout=120)
        stats = cluster.stats()
    assert _fingerprint(result) == _fingerprint(unbroken)
    assert session.migrations == hops
    assert stats.migrations == hops
    assert stats.evicted == hops  # each hop is one eviction on the source
    _assert_conserved(stats)


def test_migrate_during_trust_renegotiation_round(tmp_path):
    """The drain rule holds mid-renegotiation: a migration requested while
    trust changes are being applied waits for the post-drain boundary and
    changes nothing in the result."""
    changes = (
        TrustChange(window=1, party=0, trust=0.5),
        TrustChange(window=3, party=1, trust=0.25),
    )
    spec = _stream_spec(
        seed=11, windows=8, trust_changes=changes, readapt_cooldown=1
    )
    unbroken = _single_engine(spec)
    assert len(unbroken.events) >= 3  # initial + both renegotiations
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(spec, checkpoint_every=1)
        # Issued immediately: the eviction lands at the first boundary,
        # i.e. inside the renegotiation window schedule.
        cluster.migrate(session.session_id, 1 - session.replica)
        result = session.result(timeout=120)
    assert _fingerprint(result) == _fingerprint(unbroken)
    assert [(e.reason, e.window) for e in result.events] == [
        (e.reason, e.window) for e in unbroken.events
    ]


# ----------------------------------------------------------------------
# migration edge cases
# ----------------------------------------------------------------------
def test_migrate_parked_session_is_friendly(tmp_path):
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(
            _stream_spec(windows=20), checkpoint_every=2, replica=0
        )
        parked = cluster.drain(0, resume=False)
        assert parked and parked[0][1] is None
        assert session.poll() == "parked"
        with pytest.raises(ClusterError, match="resume it instead"):
            cluster.migrate(session.session_id, 1)
        # ... and the hinted path actually resumes it.
        cluster.undrain(0)
        landed = cluster.resume(session.session_id)
        assert landed in (0, 1)
        assert session.result(timeout=120).records_processed == 20 * 32


def test_migrate_unknown_and_settled_sessions_are_friendly(tmp_path):
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        with pytest.raises(ClusterError, match="no tracked cluster session"):
            cluster.migrate(99, 1)
        session = cluster.submit(_stream_spec(windows=2), checkpoint_every=1)
        session.result(timeout=120)
        # Settled sessions are pruned at the next submit; migrating one is
        # an unknown-session error either way.
        with pytest.raises(ClusterError):
            cluster.migrate(session.session_id, 1)


def test_migrate_without_checkpoint_dir_refused():
    with ClusterController(replicas=2) as cluster:
        session = cluster.submit(_stream_spec(windows=2))
        with pytest.raises(ClusterError, match="checkpoint_dir"):
            cluster.migrate(session.session_id, 1)
        session.result(timeout=120)


def test_migrate_batch_session_refused(tmp_path):
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        spec = SessionSpec(kind="batch", dataset="iris", k=3, seed=0)
        session = cluster.submit(spec, replica=0)
        try:
            with pytest.raises(ClusterError, match="stream"):
                cluster.migrate(session.session_id, 1)
        except BaseException:
            raise
        finally:
            session.wait(timeout=120)


def test_migrate_to_full_destination_reenters_admission_queue(tmp_path):
    """A destination at max_inflight queues the migrant (admission is the
    same gate fresh submissions pass); the result is still bit-identical."""
    spec = _stream_spec(seed=9)
    unbroken = _single_engine(spec)
    with ClusterController(
        replicas=2, max_inflight=1, checkpoint_dir=str(tmp_path)
    ) as cluster:
        # Fill replica 1's only driver slot with a long session.
        occupier = cluster.submit(
            _stream_spec(seed=1, tenant="globex", windows=30), replica=1
        )
        migrant = cluster.submit(spec, checkpoint_every=2, replica=0)
        landed = cluster.migrate(migrant.session_id, 1)
        result = migrant.result(timeout=240)
        occupier.result(timeout=240)
        stats = cluster.stats()
    if landed is not None:  # did not complete before the boundary
        assert landed == 1
        assert migrant.migrations == 1
    assert _fingerprint(result) == _fingerprint(unbroken)
    _assert_conserved(stats)


def test_migrate_with_bounded_queue_bounces_back_to_source(tmp_path):
    """If the destination refuses admission outright, the session bounces
    back to its source replica and still finishes bit-identically."""
    spec = _stream_spec(seed=9)
    unbroken = _single_engine(spec)
    with ClusterController(
        replicas=2, max_inflight=1, queue_limit=0,
        checkpoint_dir=str(tmp_path),
    ) as cluster:
        occupier = cluster.submit(
            _stream_spec(seed=1, tenant="globex", windows=30), replica=1
        )
        migrant = cluster.submit(spec, checkpoint_every=2, replica=0)
        landed = cluster.migrate(migrant.session_id, 1)
        result = migrant.result(timeout=240)
        occupier.result(timeout=240)
    assert landed in (None, 0)  # completed-first, or bounced to the source
    assert _fingerprint(result) == _fingerprint(unbroken)


# ----------------------------------------------------------------------
# tenant budgets: charged once, cluster-wide
# ----------------------------------------------------------------------
def test_tenant_session_budget_conserved_across_migration(tmp_path):
    policy = {"acme": TenantPolicy(max_sessions=1)}
    with ClusterController(
        replicas=2, tenants=policy, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(
            _stream_spec(seed=3), checkpoint_every=2, replica=0
        )
        # The hop re-admits on the destination replica but must not charge
        # the tenant's cluster-level budget a second time.
        cluster.migrate(session.session_id, 1)
        with pytest.raises(AdmissionError, match="session budget"):
            cluster.submit(_stream_spec(seed=4))
        result = session.result(timeout=120)
        stats = cluster.stats()
    assert result.records_processed == 10 * 32
    row = {t.tenant: t for t in stats.tenants}["acme"]
    assert row.submitted == 1  # one logical session, however many hops
    assert row.rejected == 1
    _assert_conserved(stats)


def test_tenant_max_active_counts_migrating_sessions(tmp_path):
    policy = {"acme": TenantPolicy(max_active=1)}
    with ClusterController(
        replicas=2, tenants=policy, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(_stream_spec(windows=20), checkpoint_every=2)
        with pytest.raises(AdmissionError, match="max_active"):
            cluster.submit(_stream_spec(seed=8))
        session.result(timeout=120)
        # Capacity released on completion.
        follow_up = cluster.submit(_stream_spec(seed=8, windows=2))
        follow_up.result(timeout=120)


def test_tenant_privacy_budget_cluster_wide():
    policy = {"acme": TenantPolicy(privacy_budget=1)}
    with ClusterController(replicas=2, tenants=policy) as cluster:
        spec = SessionSpec(
            kind="batch", dataset="iris", k=3, seed=0, tenant="acme",
            compute_privacy=True,
        )
        first = cluster.submit(spec)
        with pytest.raises(AdmissionError, match="privacy"):
            cluster.submit(SessionSpec(
                kind="batch", dataset="iris", k=3, seed=1, tenant="acme",
                compute_privacy=True,
            ))
        first.result(timeout=120)


# ----------------------------------------------------------------------
# placement policies
# ----------------------------------------------------------------------
def test_hash_placement_is_deterministic():
    spec = _stream_spec()
    eligible = (0, 1, 2)
    picks = {hash_placement(spec, 7, eligible, None) for _ in range(10)}
    assert len(picks) == 1
    assert picks.pop() in eligible


def test_tenant_placement_keeps_a_tenant_together():
    eligible = (0, 1, 2)
    picks = {
        tenant_placement(_stream_spec(seed=s), s, eligible, None)
        for s in range(6)
    }
    assert len(picks) == 1  # same tenant -> same replica, whatever the spec


def test_least_loaded_placement_prefers_the_idle_replica():
    with ClusterController(replicas=2, placement="least_loaded") as cluster:
        # Pin a long-running session onto replica 0, then let the policy
        # place the next one: it must pick the idle replica 1.
        busy = cluster.submit(_stream_spec(windows=20), replica=0)
        placed = cluster.submit(_stream_spec(seed=6, tenant="globex", windows=2))
        assert placed.replica == 1
        placed.result(timeout=120)
        busy.result(timeout=120)


def test_resolve_placement_accepts_callables_rejects_unknown():
    name, fn = resolve_placement(least_loaded_placement)
    assert name == "least_loaded_placement" and fn is least_loaded_placement
    with pytest.raises(ValueError, match="hash"):
        resolve_placement("no_such_policy")
    with pytest.raises(ClusterError, match="no_such_policy"):
        ClusterController(replicas=1, placement="no_such_policy")


# ----------------------------------------------------------------------
# rebalance / drain / park / resume
# ----------------------------------------------------------------------
def test_rebalance_levels_a_lopsided_cluster(tmp_path):
    specs = [
        _stream_spec(seed=i, tenant="acme" if i % 2 else "globex", windows=20)
        for i in range(4)
    ]
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        sessions = [
            cluster.submit(spec, checkpoint_every=2, replica=0)
            for spec in specs
        ]
        moves = cluster.rebalance()
        for session in sessions:
            session.result(timeout=240)
        stats = cluster.stats()
    # Some sessions may finish before their checkpoint boundary, but any
    # move that happened went 0 -> 1 and is counted.
    assert all(src == 0 and dst == 1 for _, src, dst in moves)
    assert stats.rebalances == 1
    assert stats.migrations >= len(moves)
    _assert_conserved(stats)


def test_drain_moves_sessions_and_refuses_new_ones(tmp_path):
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(
            _stream_spec(windows=20), checkpoint_every=2, replica=0
        )
        dispositions = cluster.drain(0)
        with pytest.raises(ClusterError, match="draining"):
            cluster.submit(_stream_spec(seed=2), replica=0)
        result = session.result(timeout=240)
        stats = cluster.stats()
    moved = dict(dispositions)
    if session.session_id in moved and moved[session.session_id] is not None:
        assert moved[session.session_id] == 1
    assert result.records_processed == 20 * 32
    _assert_conserved(stats)


def test_drain_last_replica_needs_park_mode(tmp_path):
    with ClusterController(
        replicas=1, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(
            _stream_spec(windows=6), checkpoint_every=2
        )
        with pytest.raises(ClusterError, match="resume=False"):
            cluster.drain(0)
        session.result(timeout=120)


def test_close_park_then_resume_in_new_cluster_bit_identical(tmp_path):
    spec = _stream_spec(seed=13, windows=12)
    unbroken = _single_engine(spec)
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as cluster:
        session = cluster.submit(spec, checkpoint_every=2)
        parked = cluster.close(park=True)
    assert session.poll() == "parked"
    assert parked and all(os.path.exists(path) for path in parked)
    assert session.parked_path in parked
    with pytest.raises(ClusterError, match="parked"):
        session.result(timeout=0)
    # A brand-new cluster finishes the run from the parked file.
    with ClusterController(
        replicas=2, checkpoint_dir=str(tmp_path)
    ) as fresh:
        handle = fresh.replicas[0].resume(session.parked_path)
        result = handle.result(timeout=120)
    assert _fingerprint(result) == _fingerprint(unbroken)


def test_cluster_refuses_after_close():
    cluster = ClusterController(replicas=1)
    cluster.close()
    with pytest.raises(AdmissionError, match="closed"):
        cluster.submit(_stream_spec(windows=2))


def test_close_park_needs_checkpoint_dir():
    with ClusterController(replicas=1) as cluster:
        with pytest.raises(Exception, match="checkpoint"):
            cluster.close(park=True)


# ----------------------------------------------------------------------
# merged stats / reporting surface
# ----------------------------------------------------------------------
def test_stats_to_dict_and_summary_surface_everything(tmp_path):
    with ClusterController(
        replicas=2, placement="tenant", checkpoint_dir=str(tmp_path)
    ) as cluster:
        specs = [
            _stream_spec(seed=i, tenant="acme" if i % 2 else "globex",
                         windows=2)
            for i in range(4)
        ]
        cluster.run(specs)
        stats = cluster.stats()
    payload = stats.to_dict()
    assert payload["replicas"] == 2
    assert payload["placement"] == "tenant"
    assert payload["submitted"] == 4
    assert len(payload["per_replica"]) == 2
    assert set(payload["tenants"]) == {"acme", "globex"}
    text = stats.summary()
    assert "placement=tenant" in text
    assert "replica 0" in text and "replica 1" in text
    assert stats.sessions_per_second > 0
    _assert_conserved(stats)
