"""Tests for SAPConfig and the classifier factory."""

import pytest

from repro.mining.knn import KNNClassifier
from repro.mining.multiclass import OneVsOneClassifier
from repro.parties.config import ClassifierSpec, SAPConfig, make_classifier


class TestClassifierSpec:
    def test_default_is_knn(self):
        assert ClassifierSpec().name == "knn"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            ClassifierSpec("random_forest")

    def test_factory_builds_knn_with_params(self):
        model = make_classifier(ClassifierSpec("knn", {"n_neighbors": 7}))
        assert isinstance(model, KNNClassifier)
        assert model.n_neighbors == 7

    def test_factory_builds_svm(self):
        model = make_classifier(ClassifierSpec("svm_rbf", {"C": 2.0}))
        assert isinstance(model, OneVsOneClassifier)

    def test_factory_builds_linear_svm(self):
        model = make_classifier(ClassifierSpec("linear_svm"))
        assert isinstance(model, OneVsOneClassifier)

    def test_factory_builds_perceptron(self):
        model = make_classifier(ClassifierSpec("perceptron", {"epochs": 3}))
        assert isinstance(model, OneVsOneClassifier)

    def test_perceptron_rejects_unknown_params(self):
        with pytest.raises(TypeError):
            make_classifier(ClassifierSpec("perceptron", {"bogus": 1}))

    def test_each_call_returns_fresh_instance(self):
        spec = ClassifierSpec("knn")
        assert make_classifier(spec) is not make_classifier(spec)


class TestSAPConfig:
    def test_defaults_valid(self):
        config = SAPConfig()
        assert config.k == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SAPConfig(k=1)
        with pytest.raises(ValueError):
            SAPConfig(noise_sigma=-0.1)
        with pytest.raises(ValueError):
            SAPConfig(test_fraction=0.0)
        with pytest.raises(ValueError):
            SAPConfig(test_fraction=1.0)

    def test_provider_names(self):
        config = SAPConfig(k=4)
        assert config.provider_names == (
            "provider-0",
            "provider-1",
            "provider-2",
            "coordinator",
        )
        assert config.provider_name(3) == "coordinator"
        assert config.miner_name == "miner"
