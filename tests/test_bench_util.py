"""Trajectory recording in benchmarks/_util.py: dedupe and validation."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
)
import _util  # noqa: E402


def test_record_trajectory_appends_and_grows_history(tmp_path):
    path = str(tmp_path / "BENCH_demo.json")
    entry = _util.record_trajectory(
        path, "demo", {"records_per_s": 100.0}, timestamp="t0"
    )
    assert entry["timestamp"] == "t0"
    assert entry["machine"] == _util.machine_fingerprint()
    second = _util.record_trajectory(
        path, "demo", {"records_per_s": 120.0}, timestamp="t1"
    )
    assert second["timestamp"] == "t1"
    history = json.load(open(path))
    assert history["bench"] == "demo"
    assert [e["timestamp"] for e in history["entries"]] == ["t0", "t1"]


def test_record_trajectory_skips_exact_timestamp_machine_duplicates(tmp_path):
    path = str(tmp_path / "BENCH_demo.json")
    _util.record_trajectory(path, "demo", {"records_per_s": 100.0}, timestamp="t0")
    # a retried CI job pins the same timestamp on the same machine: no growth
    returned = _util.record_trajectory(
        path, "demo", {"records_per_s": 999.0}, timestamp="t0"
    )
    history = json.load(open(path))
    assert len(history["entries"]) == 1
    # the existing entry is returned untouched, not the new measurement
    assert returned["metrics"] == {"records_per_s": 100.0}
    # a different timestamp on the same machine still appends
    _util.record_trajectory(path, "demo", {"records_per_s": 110.0}, timestamp="t1")
    assert len(json.load(open(path))["entries"]) == 2


def test_record_trajectory_rejects_corrupted_files(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"bench": "demo", "entries": "nope"}))
    with pytest.raises(ValueError, match="not a benchmark trajectory"):
        _util.record_trajectory(str(path), "demo", {}, timestamp="t0")
    path.write_text(
        json.dumps({"bench": "demo", "entries": [{"timestamp": 42}]})
    )
    with pytest.raises(ValueError, match="entry 0"):
        _util.record_trajectory(str(path), "demo", {}, timestamp="t0")


def test_committed_trajectories_validate():
    # the repo's own BENCH_*.json files must parse under the gate's rules
    from repro.obs.experiment import load_trajectory

    repo = os.path.join(os.path.dirname(__file__), os.pardir)
    committed = sorted(
        name for name in os.listdir(repo) if name.startswith("BENCH_")
    )
    assert committed, "expected committed BENCH_*.json trajectories"
    for name in committed:
        payload = load_trajectory(os.path.join(repo, name))
        assert payload["entries"], name
