"""Tests for the analysis layer: figure builders, experiments, reporting."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    attack_ablation,
    identifiability_monte_carlo,
    noise_sweep,
    optimizer_ablation,
    risk_sweep,
)
from repro.analysis.figures import (
    FIGURE4_OPT_RATES,
    accuracy_deviation_series,
    figure2_series,
    figure3_series,
    figure4_series,
)
from repro.analysis.reporting import (
    ascii_table,
    format_mapping,
    series_block,
    text_histogram,
)
from repro.parties.config import ClassifierSpec


class TestFigure2:
    def test_series_structure_and_dominance(self):
        series = figure2_series(
            dataset="iris", n_rounds=6, local_steps=4, seed=0, max_rows=120
        )
        assert len(series["random"]) == 6
        assert len(series["optimized"]) == 6
        assert np.mean(series["optimized"]) >= np.mean(series["random"])


class TestFigure3:
    def test_series_covers_grid(self):
        series = figure3_series(
            datasets=("iris",),
            k_values=(3, 4),
            n_rounds=2,
            local_steps=1,
            seed=0,
        )
        assert set(series) == {("iris", "class"), ("iris", "uniform")}
        for rates in series.values():
            assert set(rates) == {3, 4}
            for value in rates.values():
                assert 0.0 < value <= 1.0


class TestFigure4:
    def test_reference_rates_present(self):
        series = figure4_series()
        assert set(series) == set(FIGURE4_OPT_RATES)

    def test_monotone_in_s0(self):
        series = figure4_series()
        for by_s0 in series.values():
            s0_sorted = sorted(by_s0)
            values = [by_s0[s] for s in s0_sorted]
            assert values == sorted(values)

    def test_ordering_by_opt_rate_at_high_s0(self):
        series = figure4_series()
        assert series["shuttle"][0.99] > series["diabetes"][0.99]
        assert series["diabetes"][0.99] > series["votes"][0.99]

    def test_custom_rates(self):
        series = figure4_series(opt_rates={"x": 0.5}, s0_values=[0.9])
        assert series == {"x": {0.9: pytest.approx(series["x"][0.9])}}


class TestAccuracySeries:
    def test_small_run(self):
        series = accuracy_deviation_series(
            ClassifierSpec("knn", {"n_neighbors": 3}),
            datasets=("iris",),
            k=3,
            repeats=1,
            seed=0,
        )
        assert set(series) == {("iris", "uniform"), ("iris", "class")}
        for value in series.values():
            assert -50.0 < value < 50.0


class TestExperiments:
    def test_identifiability_monte_carlo(self):
        stats = identifiability_monte_carlo(4, n_runs=400, seed=0)
        assert stats["analytic"] == pytest.approx(1 / 3)
        assert stats["empirical_max"] <= stats["analytic"] + 0.08

    def test_risk_sweep_rows(self):
        rows = risk_sweep(k_values=(2, 5))
        assert len(rows) == 2
        assert rows[0]["identifiability"] == 1.0
        assert rows[1]["risk_eq1"] < rows[0]["risk_eq1"]

    def test_noise_sweep_tradeoff(self):
        rows = noise_sweep(dataset="iris", sigmas=(0.0, 0.3), seed=0)
        assert rows[0]["sigma"] == 0.0
        # More noise -> strictly more privacy under the known-sample attack.
        assert rows[1]["privacy"] > rows[0]["privacy"]

    def test_optimizer_ablation_structure(self):
        stats = optimizer_ablation(
            dataset="iris", n_rounds=4, local_steps=3, seed=0, max_rows=100
        )
        assert set(stats) == {"random_search", "hill_climbing"}
        assert (
            stats["hill_climbing"]["rho_bar"]
            >= stats["random_search"]["rho_bar"] - 1e-9
        )

    def test_attack_ablation_reports_all_attacks(self):
        stats = attack_ablation(dataset="iris", seed=0, max_rows=100)
        assert {"naive", "ica", "known_sample", "distance_inference"} <= set(
            stats
        )
        assert stats["guarantee"] == pytest.approx(
            min(v for k, v in stats.items() if k != "guarantee")
        )


class TestReporting:
    def test_ascii_table_alignment(self):
        text = ascii_table(["name", "value"], [["a", 1.5], ["long-name", 2.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]
        assert "2.250" in text

    def test_ascii_table_custom_float_format(self):
        text = ascii_table(["v"], [[1.23456]], float_format="{:+.1f}")
        assert "+1.2" in text

    def test_text_histogram_bins(self):
        text = text_histogram([0.1] * 5 + [0.9] * 5, bins=2, label="demo")
        assert text.startswith("demo")
        assert text.count("5") >= 2

    def test_text_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            text_histogram([])

    def test_format_mapping_alignment(self):
        text = format_mapping({"a": 1, "long_key": 2.5})
        assert "a        : 1" in text
        assert "long_key : 2.5000" in text

    def test_series_block_frame(self):
        block = series_block("Title", "body")
        assert block.splitlines()[1] == "====="
