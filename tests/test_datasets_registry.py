"""Tests for the 12-dataset registry."""

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASET_NAMES,
    DATASET_SPECS,
    FIGURE3_DATASETS,
    dataset_summary,
    load_dataset,
)


def test_twelve_datasets_registered():
    assert len(DATASET_NAMES) == 12
    expected = {
        "breast_w", "credit_a", "credit_g", "diabetes", "ecoli", "hepatitis",
        "heart", "ionosphere", "iris", "shuttle", "votes", "wine",
    }
    assert set(DATASET_NAMES) == expected


def test_figure3_datasets_are_registered():
    assert set(FIGURE3_DATASETS) <= set(DATASET_NAMES)
    assert FIGURE3_DATASETS == ("diabetes", "shuttle", "votes")


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_load_matches_spec(name):
    spec = DATASET_SPECS[name]
    ds = load_dataset(name)
    assert ds.X.shape == (spec.n_rows, spec.n_features)
    assert len(ds.classes) == spec.n_classes


def test_load_is_case_insensitive():
    a = load_dataset("IRIS")
    b = load_dataset("iris")
    np.testing.assert_array_equal(a.X, b.X)


def test_unknown_name_lists_options():
    with pytest.raises(KeyError) as excinfo:
        load_dataset("adult")
    assert "iris" in str(excinfo.value)


def test_default_seed_is_stable():
    a = load_dataset("wine")
    b = load_dataset("wine")
    np.testing.assert_array_equal(a.X, b.X)


def test_explicit_seed_changes_table():
    a = load_dataset("wine")
    b = load_dataset("wine", seed=999)
    assert not np.array_equal(a.X, b.X)


def test_shuttle_skew_preserved():
    ds = load_dataset("shuttle")
    counts = np.bincount(ds.y)
    assert counts[0] / ds.n_rows > 0.7  # dominant class ~79%
    assert len(counts) == 7


def test_votes_is_binary():
    ds = load_dataset("votes")
    assert set(np.unique(ds.X)).issubset({0.0, 1.0})


def test_ecoli_has_eight_classes_with_small_tail():
    ds = load_dataset("ecoli")
    counts = np.bincount(ds.y)
    assert len(counts) == 8
    assert counts.min() >= 2


def test_iris_is_balanced():
    ds = load_dataset("iris")
    counts = np.bincount(ds.y)
    assert counts.tolist() == [50, 50, 50]


def test_summary_mentions_every_dataset():
    text = dataset_summary()
    for name in DATASET_NAMES:
        assert name in text
