"""Tests for adversary views and identifiability estimation."""

import numpy as np
import pytest

from repro.core.protocol import draw_exchange_plan
from repro.simnet.adversary import (
    ObservationLedger,
    empirical_identifiability,
    posterior_over_sources,
)
from repro.simnet.messages import Message, MessageKind


def make_message(sender="a", recipient="b", kind=MessageKind.SESSION_ANNOUNCE):
    return Message(kind=kind, sender=sender, recipient=recipient, payload={"k": 1})


def test_ledger_records_and_filters_views():
    ledger = ObservationLedger()
    ledger.record_endpoint(0.1, "b", make_message())
    ledger.record_endpoint(0.2, "c", make_message(recipient="c"))
    assert len(ledger.view_of("b")) == 1
    assert len(ledger.view_of("c")) == 1
    assert ledger.view_of("nobody") == []


def test_ledger_principals():
    ledger = ObservationLedger()
    ledger.record_endpoint(0.1, "b", make_message())
    ledger.record_endpoint(0.2, "c", make_message(recipient="c"))
    assert ledger.principals() == ("b", "c")


def test_plaintexts_seen_by_filters_kind():
    ledger = ObservationLedger()
    ledger.record_endpoint(0.1, "b", make_message())
    ledger.record_endpoint(0.2, "b", make_message(kind=MessageKind.ABORT))
    announces = ledger.plaintexts_seen_by("b", MessageKind.SESSION_ANNOUNCE)
    assert len(announces) == 1


def test_posterior_over_sources_normalizes():
    pairs = [("f1", "s1"), ("f1", "s2"), ("f1", "s2"), ("f2", "s3")]
    posterior = posterior_over_sources(pairs)
    assert posterior["f1"]["s1"] == pytest.approx(1 / 3)
    assert posterior["f1"]["s2"] == pytest.approx(2 / 3)
    assert posterior["f2"]["s3"] == 1.0


def test_empirical_identifiability_picks_worst_forwarder():
    pairs = [("f1", "s1")] * 9 + [("f2", "s1")] + [("f2", "s2")] * 9
    result = empirical_identifiability(pairs)
    assert result["s1"] == pytest.approx(1.0)  # f1 always forwards s1
    assert result["s2"] == pytest.approx(0.9)


@pytest.mark.parametrize("k", [3, 5, 8])
def test_exchange_plan_identifiability_bounded(k):
    """Monte-Carlo over plans: attribution never beats the paper's 1/(k-1)."""
    rng = np.random.default_rng(0)
    pairs = []
    for _ in range(4000):
        plan = draw_exchange_plan(k, rng)
        for source in range(k):
            pairs.append((str(plan.receiver_of_source(source)), str(source)))
    worst = max(empirical_identifiability(pairs).values())
    assert worst <= 1.0 / (k - 1) + 0.05


def test_exchange_plan_identifiability_near_uniform():
    """With the redirect, per-pair attribution is ~1/k for every source."""
    k = 5
    rng = np.random.default_rng(1)
    pairs = []
    for _ in range(6000):
        plan = draw_exchange_plan(k, rng)
        for source in range(k):
            pairs.append((str(plan.receiver_of_source(source)), str(source)))
    posterior = posterior_over_sources(pairs)
    for per_forwarder in posterior.values():
        for probability in per_forwarder.values():
            assert probability == pytest.approx(1.0 / k, abs=0.03)
