"""Tests for the attack models and the resilience evaluator."""

import numpy as np
import pytest

from repro.attacks.base import build_context
from repro.attacks.distance import DistanceInferenceAttack
from repro.attacks.ica import ICAAttack, fast_ica
from repro.attacks.known_sample import KnownSampleAttack
from repro.attacks.naive import NaiveEstimationAttack
from repro.attacks.resilience import AttackSuite, default_suite, fast_suite
from repro.core.perturbation import sample_perturbation
from repro.core.privacy import minimum_privacy_guarantee


@pytest.fixture
def X(rng):
    """Non-Gaussian independent columns (ICA-friendly ground truth)."""
    d, n = 4, 400
    columns = [
        rng.uniform(0, 1, size=n),
        rng.exponential(scale=0.2, size=n),
        rng.beta(0.4, 0.4, size=n),
        rng.uniform(0.2, 0.8, size=n),
    ]
    return np.vstack(columns)


def perturb(X, rng, noise_sigma=0.0):
    p = sample_perturbation(X.shape[0], rng, noise_sigma=noise_sigma)
    Y = np.asarray(p.apply(X, rng=rng if noise_sigma else None))
    return p, Y


class TestContext:
    def test_known_sample_sizing(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.05, max_known=10, rng=rng)
        assert context.n_known == 10  # min(10, ceil(0.05*400)=20)

    def test_zero_known_fraction(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.0, rng=rng)
        assert context.n_known == 0

    def test_shape_mismatch_rejected(self, X, rng):
        with pytest.raises(ValueError):
            build_context(X, X[:, :5], rng=rng)

    def test_background_statistics_match_original(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, rng=rng)
        np.testing.assert_allclose(context.column_means, X.mean(axis=1))
        np.testing.assert_allclose(context.column_stds, X.std(axis=1))


class TestNaive:
    def test_defeated_by_rotation(self, X, rng):
        """Rotation mixes columns, so the naive attack reconstructs poorly."""
        _, Y = perturb(X, rng)
        context = build_context(X, Y, rng=rng)
        estimate = NaiveEstimationAttack().reconstruct(context)
        assert minimum_privacy_guarantee(X, estimate) > 0.2

    def test_beats_identity_perturbation(self, X, rng):
        """Without rotation (identity), the naive attack recovers columns."""
        from repro.core.perturbation import GeometricPerturbation

        identity = GeometricPerturbation(
            rotation=np.eye(4), translation=np.full(4, 0.3)
        )
        Y = np.asarray(identity.apply(X))
        context = build_context(X, Y, rng=rng)
        estimate = NaiveEstimationAttack().reconstruct(context)
        assert minimum_privacy_guarantee(X, estimate) < 0.15

    def test_estimate_has_original_shape(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, rng=rng)
        assert NaiveEstimationAttack().reconstruct(context).shape == X.shape


class TestFastICA:
    def test_components_shape_and_scale(self, X, rng):
        _, Y = perturb(X, rng)
        components, unmixing = fast_ica(Y, rng)
        assert components.shape == Y.shape
        np.testing.assert_allclose(components.std(axis=1), 1.0, atol=1e-6)

    def test_unmixing_reproduces_components(self, X, rng):
        _, Y = perturb(X, rng)
        components, unmixing = fast_ica(Y, rng)
        centred = Y - Y.mean(axis=1, keepdims=True)
        np.testing.assert_allclose(unmixing @ centred, components, atol=1e-6)

    def test_recovers_independent_sources_up_to_sign(self, rng):
        """On a pure mixing of very non-Gaussian sources, some recovered
        component should correlate strongly with each source."""
        n = 2000
        S = np.vstack(
            [rng.uniform(-1, 1, size=n), rng.exponential(size=n) - 1.0]
        )
        from repro.core.rotation import haar_orthogonal

        A = haar_orthogonal(2, rng)
        Y = A @ S
        components, _ = fast_ica(Y, rng)
        correlation = np.abs(np.corrcoef(np.vstack([S, components]))[:2, 2:])
        assert correlation.max(axis=1).min() > 0.9

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            fast_ica(np.zeros(5), rng)
        with pytest.raises(ValueError):
            fast_ica(np.zeros((3, 1)), rng)


class TestICAAttack:
    def test_stronger_than_naive_on_pure_rotation(self, X, rng):
        p = sample_perturbation(X.shape[0], rng, noise_sigma=0.0)
        Y = np.asarray(p.apply(X))
        context = build_context(X, Y, rng=rng)
        naive_privacy = minimum_privacy_guarantee(
            X, NaiveEstimationAttack().reconstruct(context)
        )
        ica_privacy = minimum_privacy_guarantee(
            X, ICAAttack().reconstruct(context)
        )
        assert ica_privacy < naive_privacy + 0.05

    def test_noise_degrades_the_attack(self, X, rng):
        clean_ctx = build_context(
            X, np.asarray(perturb(X, np.random.default_rng(5))[1]),
            rng=np.random.default_rng(0),
        )
        noisy_ctx = build_context(
            X,
            np.asarray(
                perturb(X, np.random.default_rng(5), noise_sigma=0.3)[1]
            ),
            rng=np.random.default_rng(0),
        )
        attack = ICAAttack()
        clean_privacy = minimum_privacy_guarantee(
            X, attack.reconstruct(clean_ctx)
        )
        noisy_privacy = minimum_privacy_guarantee(
            X, attack.reconstruct(noisy_ctx)
        )
        assert noisy_privacy >= clean_privacy - 0.1


class TestKnownSample:
    def test_exact_recovery_without_noise(self, X, rng):
        p, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.05, max_known=20, rng=rng)
        estimate = KnownSampleAttack().reconstruct(context)
        assert minimum_privacy_guarantee(X, estimate) < 0.01

    def test_noise_leaves_residual_privacy(self, X, rng):
        p, Y = perturb(X, rng, noise_sigma=0.2)
        context = build_context(X, Y, known_fraction=0.05, max_known=20, rng=rng)
        estimate = KnownSampleAttack().reconstruct(context)
        assert minimum_privacy_guarantee(X, estimate) > 0.1

    def test_without_knowledge_falls_back_to_mean(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.0, rng=rng)
        estimate = KnownSampleAttack().reconstruct(context)
        np.testing.assert_allclose(estimate.std(axis=1), 0.0, atol=1e-12)

    def test_underdetermined_fit_is_stable(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.005, max_known=2, rng=rng)
        estimate = KnownSampleAttack().reconstruct(context)
        assert np.isfinite(estimate).all()

    def test_ridge_validation(self):
        with pytest.raises(ValueError):
            KnownSampleAttack(ridge=-1.0)


class TestDistanceInference:
    def test_matches_known_points_without_noise(self, X, rng):
        p, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.02, max_known=5, rng=rng)
        estimate = DistanceInferenceAttack().reconstruct(context)
        # With exact distance preservation the matching should succeed and
        # the affine fit should reconstruct well.
        assert minimum_privacy_guarantee(X, estimate) < 0.2

    def test_too_few_known_points_falls_back(self, X, rng):
        _, Y = perturb(X, rng)
        context = build_context(X, Y, known_fraction=0.0, rng=rng)
        estimate = DistanceInferenceAttack().reconstruct(context)
        np.testing.assert_allclose(estimate.std(axis=1), 0.0, atol=1e-12)


class TestSuites:
    def test_full_suite_reports_every_attack(self, X, rng):
        suite = default_suite()
        p, _ = perturb(X, rng)
        report = suite.evaluate(p, X, rng)
        assert set(report.per_attack) == {
            "naive",
            "ica",
            "pca",
            "known_sample",
            "distance_inference",
        }
        assert report.guarantee == min(report.per_attack.values())

    def test_fast_suite_is_subset(self):
        names = {a.name for a in fast_suite().attacks}
        assert names == {"naive", "known_sample"}

    def test_empty_suite_rejected(self, X, rng):
        suite = AttackSuite(attacks=())
        p, _ = perturb(X, rng)
        with pytest.raises(ValueError):
            suite.evaluate(p, X, rng)

    def test_guarantee_shortcut_matches_report(self, X):
        suite = fast_suite()
        p = sample_perturbation(X.shape[0], np.random.default_rng(3), 0.05)
        g = suite.guarantee(p, X, np.random.default_rng(9))
        r = suite.evaluate(p, X, np.random.default_rng(9)).guarantee
        assert g == pytest.approx(r)

    def test_noise_improves_guarantee_under_known_sample(self, X):
        suite = fast_suite()
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        clean = suite.guarantee(
            sample_perturbation(4, np.random.default_rng(2), 0.0), X, rng_a
        )
        noisy = suite.guarantee(
            sample_perturbation(4, np.random.default_rng(2), 0.15), X, rng_b
        )
        assert noisy > clean
