"""Tests for accuracy metrics and resampling."""

import numpy as np
import pytest

from repro.mining.knn import KNNClassifier
from repro.mining.metrics import (
    accuracy_deviation,
    accuracy_score,
    confusion_matrix,
    cross_val_accuracy,
    holdout_accuracy,
    stratified_kfold_indices,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert accuracy_score([1, 1, 0, 0], [1, 0, 0, 0]) == 0.75

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestDeviation:
    def test_percentage_points(self):
        assert accuracy_deviation(0.90, 0.95) == pytest.approx(-5.0)
        assert accuracy_deviation(0.95, 0.90) == pytest.approx(5.0)

    def test_zero_when_equal(self):
        assert accuracy_deviation(0.8, 0.8) == 0.0


class TestConfusion:
    def test_counts(self):
        labels, matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(labels, [0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_unseen_predicted_label_included(self):
        labels, matrix = confusion_matrix([0, 0], [0, 5])
        np.testing.assert_array_equal(labels, [0, 5])
        assert matrix.sum() == 2


class TestStratifiedKFold:
    def test_folds_partition_data(self, rng):
        y = np.array([0] * 20 + [1] * 10)
        seen = []
        for train_idx, test_idx in stratified_kfold_indices(y, 5, rng):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            assert len(train_idx) + len(test_idx) == 30
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(30))

    def test_folds_keep_class_balance(self, rng):
        y = np.array([0] * 40 + [1] * 20)
        for _, test_idx in stratified_kfold_indices(y, 4, rng):
            fraction = (y[test_idx] == 1).mean()
            assert fraction == pytest.approx(1 / 3, abs=0.1)

    def test_rare_class_never_dropped_from_training(self, rng):
        y = np.array([0] * 29 + [1])
        for train_idx, test_idx in stratified_kfold_indices(y, 5, rng):
            assert ((y[train_idx] == 1).sum() + (y[test_idx] == 1).sum()) == 1

    def test_requires_two_splits(self, rng):
        with pytest.raises(ValueError):
            list(stratified_kfold_indices(np.zeros(5), 1, rng))


class TestEvaluators:
    def test_cross_val_on_separable_data(self, small_dataset):
        accuracy = cross_val_accuracy(
            lambda: KNNClassifier(n_neighbors=3),
            small_dataset.X,
            small_dataset.y,
            n_splits=4,
        )
        assert accuracy > 0.85

    def test_holdout(self, small_dataset, rng):
        train, test = small_dataset.train_test_split(0.3, rng)
        accuracy = holdout_accuracy(
            lambda: KNNClassifier(n_neighbors=3),
            train.X,
            train.y,
            test.X,
            test.y,
        )
        assert accuracy > 0.8
