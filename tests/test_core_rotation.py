"""Tests for random orthogonal matrices and local moves."""

import numpy as np
import pytest

from repro.core.rotation import (
    assert_rotation_shapes,
    givens_perturbation,
    haar_orthogonal,
    is_orthogonal,
    random_translation,
    rotation_distance,
    swap_rows,
)


class TestHaarOrthogonal:
    @pytest.mark.parametrize("d", [1, 2, 5, 20])
    def test_is_orthogonal(self, d, rng):
        R = haar_orthogonal(d, rng)
        assert is_orthogonal(R)

    def test_preserves_norms(self, rng):
        R = haar_orthogonal(6, rng)
        x = rng.normal(size=6)
        assert np.linalg.norm(R @ x) == pytest.approx(np.linalg.norm(x))

    def test_preserves_distances(self, rng):
        R = haar_orthogonal(4, rng)
        x, z = rng.normal(size=4), rng.normal(size=4)
        assert np.linalg.norm(R @ x - R @ z) == pytest.approx(
            np.linalg.norm(x - z)
        )

    def test_distribution_is_not_degenerate(self, rng):
        """First-column direction should roughly cover the sphere: the mean
        over many draws is near the origin."""
        draws = np.stack([haar_orthogonal(3, rng)[:, 0] for _ in range(400)])
        assert np.linalg.norm(draws.mean(axis=0)) < 0.15

    def test_invalid_dimension(self, rng):
        with pytest.raises(ValueError):
            haar_orthogonal(0, rng)

    def test_deterministic_under_seed(self):
        a = haar_orthogonal(5, np.random.default_rng(3))
        b = haar_orthogonal(5, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestMoves:
    def test_swap_rows_keeps_orthogonality(self, rng):
        R = haar_orthogonal(5, rng)
        assert is_orthogonal(swap_rows(R, 0, 3))

    def test_swap_rows_is_involution(self, rng):
        R = haar_orthogonal(4, rng)
        np.testing.assert_array_equal(swap_rows(swap_rows(R, 1, 2), 1, 2), R)

    def test_swap_rows_does_not_mutate(self, rng):
        R = haar_orthogonal(4, rng)
        original = R.copy()
        swap_rows(R, 0, 1)
        np.testing.assert_array_equal(R, original)

    def test_swap_rows_bounds_checked(self, rng):
        R = haar_orthogonal(3, rng)
        with pytest.raises(IndexError):
            swap_rows(R, 0, 5)

    def test_givens_keeps_orthogonality(self, rng):
        R = haar_orthogonal(6, rng)
        assert is_orthogonal(givens_perturbation(R, rng))

    def test_givens_is_a_small_move(self, rng):
        R = haar_orthogonal(6, rng)
        moved = givens_perturbation(R, rng, max_angle=0.01)
        assert rotation_distance(R, moved) < 0.05

    def test_givens_on_1d_is_identity(self, rng):
        R = np.array([[1.0]])
        np.testing.assert_array_equal(givens_perturbation(R, rng), R)


class TestHelpers:
    def test_is_orthogonal_rejects_non_square(self):
        assert not is_orthogonal(np.ones((2, 3)))

    def test_is_orthogonal_rejects_scaled_identity(self):
        assert not is_orthogonal(2 * np.eye(3))

    def test_random_translation_in_range(self, rng):
        t = random_translation(1000, rng)
        assert t.min() >= -1.0 and t.max() <= 1.0
        assert abs(t.mean()) < 0.1  # roughly centred

    def test_random_translation_invalid_dim(self, rng):
        with pytest.raises(ValueError):
            random_translation(0, rng)

    def test_assert_rotation_shapes(self, rng):
        R = haar_orthogonal(3, rng)
        assert_rotation_shapes(R, 3)
        with pytest.raises(ValueError):
            assert_rotation_shapes(R, 4)
        with pytest.raises(ValueError):
            assert_rotation_shapes(np.ones((3, 3)), 3)
