"""Tests for the dynamic-membership extension (provider joins post-run).

The published protocol is static: k providers, one round.  The extension
lets the coordinator admit a provider after the initial mining round — the
joiner adapts into the already-fixed target space, routes its table through
a random existing forwarder, and the miner incrementally re-mines.
"""

import numpy as np
import pytest

from repro.parties.provider import DataProvider
from repro.simnet.messages import MessageKind
from tests.test_failure_injection import build_protocol


@pytest.fixture
def completed_run(small_dataset):
    config, network, providers, coordinator, miner = build_protocol(
        small_dataset, k=3, seed=7
    )
    network.simulator.schedule(0.0, coordinator.start)
    network.run()
    assert miner.result is not None
    return config, network, providers, coordinator, miner


def admit_joiner(completed_run, joiner_dataset, seed=123):
    config, network, providers, coordinator, miner = completed_run
    test_mask = np.zeros(joiner_dataset.n_rows, dtype=bool)
    test_mask[: max(1, joiner_dataset.n_rows // 4)] = True
    joiner = DataProvider(
        name="provider-99",
        network=network,
        dataset=joiner_dataset,
        test_mask=test_mask,
        config=config,
        seed=seed,
    )
    tag = coordinator.admit_provider("provider-99")
    network.run()
    return joiner, tag


class TestDynamicJoin:
    def test_miner_remines_with_joiner_rows(self, completed_run, small_dataset):
        config, network, providers, coordinator, miner = completed_run
        before_rows = miner.result.pooled_labels.shape[0]
        joiner_data = small_dataset.subset(np.arange(20), name="joiner")
        admit_joiner(completed_run, joiner_data)
        after_rows = miner.result.pooled_labels.shape[0]
        assert after_rows == before_rows + 20

    def test_joiner_table_is_in_target_space(self, completed_run, small_dataset):
        """The joiner's adapted rows must be geometrically consistent with
        the pool: with zero noise its adapted table equals the target
        transform of its raw table."""
        config, network, providers, coordinator, miner = completed_run
        joiner_data = small_dataset.subset(np.arange(12), name="joiner")
        joiner, tag = admit_joiner(completed_run, joiner_data)

        adapted = miner._adaptors_by_tag[tag].apply(
            miner._datasets_by_tag[tag]["features"]
        )
        expected = coordinator.target.transform_clean(joiner_data.columns())
        # The joiner's perturbation carries noise_sigma=0.05, so the match
        # is up to the inherited (rotated) noise.
        residual = adapted - expected
        assert float(np.abs(residual).mean()) < 4 * 0.05

    def test_joiner_never_contacts_miner_directly(self, completed_run, small_dataset):
        config, network, providers, coordinator, miner = completed_run
        joiner_data = small_dataset.subset(np.arange(10), name="joiner")
        admit_joiner(completed_run, joiner_data)
        direct = [
            obs
            for obs in network.ledger.wire_traffic(sender="provider-99")
            if obs.recipient == config.miner_name
        ]
        assert direct == []

    def test_incremental_adaptor_sequence_sent(self, completed_run, small_dataset):
        config, network, providers, coordinator, miner = completed_run
        joiner_data = small_dataset.subset(np.arange(10), name="joiner")
        admit_joiner(completed_run, joiner_data)
        sequences = network.ledger.plaintexts_seen_by(
            config.miner_name, MessageKind.ADAPTOR_SEQUENCE
        )
        assert len(sequences) == 2
        assert len(sequences[1].payload["adaptors"]) == 1

    def test_admission_before_start_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        with pytest.raises(RuntimeError):
            coordinator.admit_provider("provider-99")

    def test_multiple_joiners(self, completed_run, small_dataset):
        config, network, providers, coordinator, miner = completed_run
        before_rows = miner.result.pooled_labels.shape[0]
        for index in range(2):
            data = small_dataset.subset(
                np.arange(10 * index, 10 * index + 10), name=f"joiner{index}"
            )
            test_mask = np.zeros(10, dtype=bool)
            test_mask[:2] = True
            DataProvider(
                name=f"joiner-{index}",
                network=network,
                dataset=data,
                test_mask=test_mask,
                config=config,
                seed=1000 + index,
            )
            coordinator.admit_provider(f"joiner-{index}")
        network.run()
        assert miner.result.pooled_labels.shape[0] == before_rows + 20
        assert coordinator.admitted == ["joiner-0", "joiner-1"]

    def test_accuracy_stays_reasonable_after_join(self, completed_run, small_dataset):
        config, network, providers, coordinator, miner = completed_run
        joiner_data = small_dataset.subset(np.arange(30), name="joiner")
        admit_joiner(completed_run, joiner_data)
        assert miner.result.accuracy > 0.6
