"""Session smoke tests across all 12 registered datasets.

These are the coarse end-to-end guarantees behind Figures 5/6: for every
dataset the full protocol must run to completion under both partition
schemes and the resulting accuracy must stay within a sane band of the
unperturbed baseline.
"""

import numpy as np
import pytest

from repro.core.session import run_sap_session
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.parties.config import ClassifierSpec, SAPConfig


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_full_protocol_on_every_dataset(name):
    table = load_dataset(name)
    config = SAPConfig(
        k=3,
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 5}),
        seed=13,
    )
    result = run_sap_session(table, config, scheme="uniform")
    assert result.miner_result.pooled_labels.shape[0] == table.n_rows
    assert 0.0 <= result.accuracy_perturbed <= 1.0
    assert abs(result.deviation) < 20.0
    # Accuracy must beat the majority-class baseline: mining perturbed data
    # is still mining.
    majority = max(np.bincount(table.y)) / table.n_rows
    assert result.accuracy_perturbed > majority - 0.1


@pytest.mark.parametrize("name", ["ecoli", "shuttle"])
def test_class_scheme_on_skewed_datasets(name):
    """The heavily skewed datasets are the stress case for the class
    partitioner (tiny classes + Dirichlet skew)."""
    table = load_dataset(name)
    config = SAPConfig(
        k=4,
        classifier=ClassifierSpec("knn", {"n_neighbors": 3}),
        seed=3,
    )
    result = run_sap_session(table, config, scheme="class")
    assert result.miner_result.pooled_labels.shape[0] == table.n_rows


@pytest.mark.parametrize(
    "classifier",
    [
        ClassifierSpec("knn", {"n_neighbors": 5}),
        ClassifierSpec("lda"),
        ClassifierSpec("linear_svm", {"epochs": 10}),
        ClassifierSpec("naive_bayes"),
        ClassifierSpec("decision_tree", {"max_depth": 5}),
    ],
    ids=lambda spec: spec.name,
)
def test_every_classifier_completes_a_session(classifier):
    table = load_dataset("wine")
    config = SAPConfig(k=3, classifier=classifier, seed=8)
    result = run_sap_session(table, config)
    assert 0.0 <= result.accuracy_perturbed <= 1.0


def test_taxonomy_at_zero_noise():
    """End-to-end confirmation of the ICDM'05 taxonomy, stated precisely:
    with the noise component off, the whole pipeline is *exactly* invariant
    for distance-based learners (deviation identically 0 across seeds),
    while the per-column learners' deviations visibly move (their model
    genuinely changes under rotation — better or worse, but not equal)."""
    table = load_dataset("wine")

    def deviations(name):
        out = []
        for seed in range(4):
            config = SAPConfig(
                k=3,
                noise_sigma=0.0,
                classifier=ClassifierSpec(name),
                seed=seed,
            )
            out.append(run_sap_session(table, config).deviation)
        return out

    for invariant in ("knn", "lda"):
        assert all(d == pytest.approx(0.0, abs=1e-9) for d in deviations(invariant))
    moved = 0
    for control in ("naive_bayes", "decision_tree"):
        if any(abs(d) > 1e-9 for d in deviations(control)):
            moved += 1
    assert moved >= 1
