"""Edge-case tests for the miner and provider state machines."""

import numpy as np
import pytest

from repro.simnet.errors import ProtocolViolationError
from repro.simnet.messages import MessageKind
from tests.test_failure_injection import build_protocol


class TestMinerDuplicates:
    def test_duplicate_dataset_tag_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        payload = {
            "tag": "t1",
            "features": np.zeros((4, 3)),
            "labels": np.zeros(3, dtype=np.int64),
            "test_mask": np.zeros(3, dtype=np.int8),
        }
        providers[0].send(MessageKind.FORWARDED_DATASET, "miner", payload)
        providers[0].send(MessageKind.FORWARDED_DATASET, "miner", dict(payload))
        with pytest.raises(ValueError):
            network.run()

    def test_duplicate_adaptor_tag_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        from repro.core.rotation import haar_orthogonal

        entry = {
            "tag": "t1",
            "rotation_adaptor": haar_orthogonal(4, np.random.default_rng(0)),
            "translation_adaptor": np.zeros(4),
        }
        providers[0].send(
            MessageKind.ADAPTOR_SEQUENCE, "miner", {"adaptors": [entry]}
        )
        providers[0].send(
            MessageKind.ADAPTOR_SEQUENCE, "miner", {"adaptors": [dict(entry)]}
        )
        with pytest.raises(ValueError):
            network.run()

    def test_adaptor_for_unknown_tag_waits_gracefully(self, small_dataset):
        """An adaptor whose dataset never arrives must not crash mining of
        the complete remainder... but also must not allow mining with a
        dataset that lacks its own adaptor."""
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        assert miner.result is not None  # normal run unaffected


class TestCoordinatorDuplicates:
    def test_duplicate_space_adaptor_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        from repro.core.rotation import haar_orthogonal

        payload = {
            "tag": "dup",
            "rotation_adaptor": haar_orthogonal(4, np.random.default_rng(0)),
            "translation_adaptor": np.zeros(4),
        }
        providers[0].send(MessageKind.SPACE_ADAPTOR, "coordinator", payload)
        providers[0].send(MessageKind.SPACE_ADAPTOR, "coordinator", dict(payload))
        with pytest.raises(ValueError):
            network.run()

    def test_duplicate_vote_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        coordinator.candidates = [None, None]  # two phantom candidates
        providers[0].send(
            MessageKind.TARGET_VOTE, "coordinator", {"scores": np.zeros(2)}
        )
        providers[0].send(
            MessageKind.TARGET_VOTE, "coordinator", {"scores": np.zeros(2)}
        )
        with pytest.raises(ValueError):
            network.run()

    def test_malformed_vote_rejected(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        coordinator.candidates = [None, None]
        providers[0].send(
            MessageKind.TARGET_VOTE, "coordinator", {"scores": np.zeros(5)}
        )
        with pytest.raises(ValueError):
            network.run()


class TestProviderEdgeCases:
    def test_unknown_message_kind_raises(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        providers[0].send(
            MessageKind.SESSION_ANNOUNCE, config.provider_name(1), {}
        )
        with pytest.raises(ProtocolViolationError):
            network.run()

    def test_provider_state_before_protocol(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        provider = providers[0]
        assert provider.tag is None
        assert provider.target is None
        assert provider.model_report is None
        # Perturbation exists from construction; raw data never equals the
        # perturbed payload.
        assert provider.perturbed_features.shape == (
            provider.dataset.n_features,
            provider.dataset.n_rows,
        )
        assert not np.allclose(
            provider.perturbed_features, provider.dataset.columns()
        )

    def test_test_mask_shape_validated(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        from repro.parties.provider import DataProvider

        with pytest.raises(ValueError):
            DataProvider(
                name="bad-mask",
                network=network,
                dataset=small_dataset,
                test_mask=np.zeros(3, dtype=bool),
                config=config,
            )

    def test_dataset_sent_exactly_once(self, small_dataset):
        config, network, providers, coordinator, miner = build_protocol(
            small_dataset, k=3
        )
        network.simulator.schedule(0.0, coordinator.start)
        network.run()
        for provider in providers:
            sent = [
                obs
                for obs in network.ledger.wire_traffic(sender=provider.name)
                if obs.kind == MessageKind.PERTURBED_DATASET
            ]
            assert len(sent) == 1
