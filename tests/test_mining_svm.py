"""Tests for the SMO-trained SVM."""

import numpy as np
import pytest

from repro.core.perturbation import perturb_rows, sample_perturbation
from repro.mining.svm import BinarySVM, SVMClassifier


@pytest.fixture
def linearly_separable(rng):
    X = np.vstack(
        [rng.normal(size=(40, 2)) - 2.0, rng.normal(size=(40, 2)) + 2.0]
    )
    y = np.array([0] * 40 + [1] * 40)
    return X, y


@pytest.fixture
def xor_data(rng):
    """The classic non-linear problem an RBF kernel must solve."""
    X = rng.uniform(-1, 1, size=(240, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    # push points away from the decision boundary for trainability
    X = X + 0.25 * np.sign(X)
    return X, y


class TestBinarySVM:
    def test_separable_problem_solved(self, linearly_separable):
        X, y = linearly_separable
        model = BinarySVM(kernel="linear", C=1.0).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_rbf_solves_xor(self, xor_data):
        X, y = xor_data
        model = BinarySVM(kernel="rbf", gamma=2.0, C=5.0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_polynomial_kernel_runs(self, linearly_separable):
        X, y = linearly_separable
        model = BinarySVM(kernel="poly", degree=2).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_support_vectors_are_subset(self, linearly_separable):
        X, y = linearly_separable
        model = BinarySVM(kernel="linear").fit(X, y)
        assert 0 < model.n_support_ <= len(y)

    def test_decision_function_sign_matches_predict(self, xor_data):
        X, y = xor_data
        model = BinarySVM(kernel="rbf", gamma=2.0).fit(X, y)
        margins = model.decision_function(X)
        predictions = model.predict(X)
        np.testing.assert_array_equal(
            predictions == model.classes_[1], margins >= 0
        )

    def test_single_class_degenerates_to_constant(self, rng):
        X = rng.normal(size=(10, 3))
        y = np.full(10, 7)
        model = BinarySVM().fit(X, y)
        np.testing.assert_array_equal(model.predict(X), np.full(10, 7))

    def test_three_classes_rejected(self, rng):
        X = rng.normal(size=(9, 2))
        y = np.array([0, 1, 2] * 3)
        with pytest.raises(ValueError):
            BinarySVM().fit(X, y)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BinarySVM(C=0.0)
        with pytest.raises(ValueError):
            BinarySVM(kernel="sigmoid")

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            BinarySVM().predict(rng.normal(size=(3, 2)))

    def test_deterministic_under_seed(self, xor_data):
        X, y = xor_data
        a = BinarySVM(kernel="rbf", gamma=2.0, seed=3).fit(X, y)
        b = BinarySVM(kernel="rbf", gamma=2.0, seed=3).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))


class TestSVMClassifierFactory:
    def test_binary_dataset(self, small_dataset):
        model = SVMClassifier(C=2.0).fit(small_dataset.X, small_dataset.y)
        assert model.score(small_dataset.X, small_dataset.y) > 0.9

    def test_multiclass_dataset(self, multiclass_dataset):
        model = SVMClassifier(C=2.0).fit(
            multiclass_dataset.X, multiclass_dataset.y
        )
        assert model.score(multiclass_dataset.X, multiclass_dataset.y) > 0.85


class TestDistanceInvariance:
    """SVM with RBF kernel depends only on pairwise distances, so rotation +
    translation leave its predictions exactly unchanged."""

    def test_exact_invariance_without_noise(self, small_dataset, rng):
        perturbation = sample_perturbation(small_dataset.n_features, rng)
        X_p = perturb_rows(perturbation, small_dataset.X)

        plain = BinarySVM(kernel="rbf", gamma=1.5, seed=0).fit(
            small_dataset.X, small_dataset.y
        )
        rotated = BinarySVM(kernel="rbf", gamma=1.5, seed=0).fit(
            X_p, small_dataset.y
        )
        probes = rng.uniform(0, 1, size=(30, small_dataset.n_features))
        probes_p = perturb_rows(perturbation, probes)
        np.testing.assert_array_equal(
            plain.predict(probes), rotated.predict(probes_p)
        )

    def test_gamma_scale_is_rotation_invariant(self, small_dataset, rng):
        """gamma='scale' uses total variance, preserved by rotation."""
        from repro.mining.kernels import resolve_gamma

        perturbation = sample_perturbation(small_dataset.n_features, rng)
        X_p = perturb_rows(perturbation, small_dataset.X)
        g_plain = resolve_gamma("scale", small_dataset.X)
        g_rotated = resolve_gamma("scale", X_p)
        assert g_plain == pytest.approx(g_rotated, rel=1e-9)
