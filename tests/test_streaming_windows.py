"""Tests for the stream window buffers."""

import numpy as np
import pytest

from repro.streaming.windows import (
    SlidingWindow,
    TumblingWindow,
    Window,
    make_window_buffer,
)


def push_range(buffer, n, d=3, t0=0.0):
    """Push n deterministic records; return every emitted window."""
    out = []
    for i in range(n):
        out.extend(buffer.push(np.full(d, float(i)), i % 2, t0 + i))
    return out


def test_tumbling_emits_disjoint_full_windows():
    buf = TumblingWindow(4)
    windows = push_range(buf, 10)
    assert len(windows) == 2
    assert [w.index for w in windows] == [0, 1]
    assert np.array_equal(windows[0].X[:, 0], [0.0, 1.0, 2.0, 3.0])
    assert np.array_equal(windows[1].X[:, 0], [4.0, 5.0, 6.0, 7.0])
    assert buf.pending == 2
    assert buf.windows_emitted == 2


def test_tumbling_flush_emits_partial_window():
    buf = TumblingWindow(4)
    push_range(buf, 6)
    tail = buf.flush()
    assert tail is not None and tail.n_rows == 2
    assert np.array_equal(tail.X[:, 0], [4.0, 5.0])
    assert buf.flush() is None


def test_window_timestamps_and_duration():
    buf = TumblingWindow(3)
    (window,) = push_range(buf, 3, t0=10.0)
    assert window.start == 10.0 and window.end == 12.0
    assert window.duration == pytest.approx(2.0)


def test_sliding_overlap_and_step():
    buf = SlidingWindow(4, step=2)
    windows = push_range(buf, 8)
    assert len(windows) == 3
    assert np.array_equal(windows[0].X[:, 0], [0.0, 1.0, 2.0, 3.0])
    assert np.array_equal(windows[1].X[:, 0], [2.0, 3.0, 4.0, 5.0])
    assert np.array_equal(windows[2].X[:, 0], [4.0, 5.0, 6.0, 7.0])


def test_fresh_counts_each_record_exactly_once():
    buf = SlidingWindow(4, step=2)
    windows = push_range(buf, 9)
    assert [w.fresh for w in windows] == [4, 2, 2]
    # The fresh tails tile the stream with no overlap and no gaps.
    tails = np.concatenate([w.X[-w.fresh :, 0] for w in windows])
    assert np.array_equal(tails, np.arange(8.0))
    tail = buf.flush()
    assert tail is not None and tail.fresh == 1
    # Nothing new since that flush: a second flush emits nothing.
    assert buf.flush() is None


def test_tumbling_fresh_is_whole_window():
    buf = TumblingWindow(4)
    windows = push_range(buf, 8)
    assert all(w.fresh == w.n_rows == 4 for w in windows)


def test_sliding_default_step_is_tumbling():
    sliding = SlidingWindow(3)
    tumbling = TumblingWindow(3)
    got = push_range(sliding, 9)
    want = push_range(tumbling, 9)
    assert len(got) == len(want) == 3
    for a, b in zip(got, want):
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)


def test_window_validation():
    with pytest.raises(ValueError):
        Window(index=0, X=np.zeros((3, 2)), y=np.zeros(2), start=0.0, end=1.0)
    with pytest.raises(ValueError):
        Window(index=0, X=np.zeros((2, 2)), y=np.zeros(2), start=1.0, end=0.0)


def test_buffer_validation():
    with pytest.raises(ValueError):
        TumblingWindow(0)
    with pytest.raises(ValueError):
        SlidingWindow(4, step=5)
    with pytest.raises(ValueError):
        SlidingWindow(4, step=0)
    with pytest.raises(ValueError):
        make_window_buffer("hopping", 4)


def test_factory_kinds():
    assert isinstance(make_window_buffer("tumbling", 4), TumblingWindow)
    sliding = make_window_buffer("sliding", 4, 2)
    assert isinstance(sliding, SlidingWindow) and sliding.step == 2
