"""Tests for the stream window buffers."""

import numpy as np
import pytest

from repro.streaming.windows import (
    EventWindowAssigner,
    SlidingWindow,
    TumblingWindow,
    Window,
    make_window_buffer,
)


def push_range(buffer, n, d=3, t0=0.0):
    """Push n deterministic records; return every emitted window."""
    out = []
    for i in range(n):
        out.extend(buffer.push(np.full(d, float(i)), i % 2, t0 + i))
    return out


def test_tumbling_emits_disjoint_full_windows():
    buf = TumblingWindow(4)
    windows = push_range(buf, 10)
    assert len(windows) == 2
    assert [w.index for w in windows] == [0, 1]
    assert np.array_equal(windows[0].X[:, 0], [0.0, 1.0, 2.0, 3.0])
    assert np.array_equal(windows[1].X[:, 0], [4.0, 5.0, 6.0, 7.0])
    assert buf.pending == 2
    assert buf.windows_emitted == 2


def test_tumbling_flush_emits_partial_window():
    buf = TumblingWindow(4)
    push_range(buf, 6)
    tail = buf.flush()
    assert tail is not None and tail.n_rows == 2
    assert np.array_equal(tail.X[:, 0], [4.0, 5.0])
    assert buf.flush() is None


def test_window_timestamps_and_duration():
    buf = TumblingWindow(3)
    (window,) = push_range(buf, 3, t0=10.0)
    assert window.start == 10.0 and window.end == 12.0
    assert window.duration == pytest.approx(2.0)


def test_sliding_overlap_and_step():
    buf = SlidingWindow(4, step=2)
    windows = push_range(buf, 8)
    assert len(windows) == 3
    assert np.array_equal(windows[0].X[:, 0], [0.0, 1.0, 2.0, 3.0])
    assert np.array_equal(windows[1].X[:, 0], [2.0, 3.0, 4.0, 5.0])
    assert np.array_equal(windows[2].X[:, 0], [4.0, 5.0, 6.0, 7.0])


def test_fresh_counts_each_record_exactly_once():
    buf = SlidingWindow(4, step=2)
    windows = push_range(buf, 9)
    assert [w.fresh for w in windows] == [4, 2, 2]
    # The fresh tails tile the stream with no overlap and no gaps.
    tails = np.concatenate([w.X[-w.fresh :, 0] for w in windows])
    assert np.array_equal(tails, np.arange(8.0))
    tail = buf.flush()
    assert tail is not None and tail.fresh == 1
    # Nothing new since that flush: a second flush emits nothing.
    assert buf.flush() is None


def test_tumbling_fresh_is_whole_window():
    buf = TumblingWindow(4)
    windows = push_range(buf, 8)
    assert all(w.fresh == w.n_rows == 4 for w in windows)


def test_sliding_default_step_is_tumbling():
    sliding = SlidingWindow(3)
    tumbling = TumblingWindow(3)
    got = push_range(sliding, 9)
    want = push_range(tumbling, 9)
    assert len(got) == len(want) == 3
    for a, b in zip(got, want):
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)


def test_window_validation():
    with pytest.raises(ValueError):
        Window(index=0, X=np.zeros((3, 2)), y=np.zeros(2), start=0.0, end=1.0)
    with pytest.raises(ValueError):
        Window(index=0, X=np.zeros((2, 2)), y=np.zeros(2), start=1.0, end=0.0)


def test_buffer_validation():
    with pytest.raises(ValueError):
        TumblingWindow(0)
    with pytest.raises(ValueError):
        SlidingWindow(4, step=5)
    with pytest.raises(ValueError):
        SlidingWindow(4, step=0)
    with pytest.raises(ValueError):
        make_window_buffer("hopping", 4)


def test_factory_rejects_step_larger_than_size():
    # A step > size would silently skip records between windows; the
    # factory must refuse it with an actionable message, not build a
    # lossy buffer.
    with pytest.raises(ValueError) as excinfo:
        make_window_buffer("sliding", 4, 9)
    message = str(excinfo.value)
    assert "step=9" in message and "size=4" in message
    assert "skip" in message
    # The event-time assigner (the path the session actually runs) must
    # give the same actionable message, not a diverging copy.
    with pytest.raises(ValueError) as excinfo:
        EventWindowAssigner("sliding", 4, 9)
    assert str(excinfo.value) == message


def test_factory_kinds():
    assert isinstance(make_window_buffer("tumbling", 4), TumblingWindow)
    sliding = make_window_buffer("sliding", 4, 2)
    assert isinstance(sliding, SlidingWindow) and sliding.step == 2


def test_window_revision_validation():
    with pytest.raises(ValueError):
        Window(
            index=0, X=np.zeros((2, 2)), y=np.zeros(2),
            start=0.0, end=1.0, revision=-1,
        )
    window = Window(
        index=0, X=np.zeros((2, 2)), y=np.zeros(2), start=0.0, end=1.0
    )
    assert window.revision == 0


# ----------------------------------------------------------------------
# event-time window arithmetic
# ----------------------------------------------------------------------
def test_assigner_tumbling_ranges_and_membership():
    assigner = EventWindowAssigner("tumbling", 4)
    assert assigner.step == 4
    assert [assigner.start_seq(w) for w in range(3)] == [0, 4, 8]
    assert [assigner.last_seq(w) for w in range(3)] == [3, 7, 11]
    for seq in range(12):
        assert list(assigner.windows_of_seq(seq)) == [seq // 4]
        assert assigner.fresh_home(seq) == seq // 4


def test_assigner_sliding_membership_matches_ranges():
    assigner = EventWindowAssigner("sliding", 4, 2)
    for seq in range(30):
        members = list(assigner.windows_of_seq(seq))
        for window in members:
            assert assigner.start_seq(window) <= seq <= assigner.last_seq(window)
        # ...and no window outside the returned range contains seq.
        if members:
            for window in (members[0] - 1, members[-1] + 1):
                if window >= 0:
                    inside = (
                        assigner.start_seq(window)
                        <= seq
                        <= assigner.last_seq(window)
                    )
                    assert not inside


def test_assigner_fresh_regions_tile_the_sequence_line():
    for kind, size, step in [
        ("tumbling", 5, None), ("sliding", 4, 2), ("sliding", 7, 3)
    ]:
        assigner = EventWindowAssigner(kind, size, step)
        homes = [assigner.fresh_home(seq) for seq in range(60)]
        # Non-decreasing, starting at window 0...
        assert homes[0] == 0
        assert all(b - a in (0, 1) for a, b in zip(homes, homes[1:]))
        # ...and each seq falls inside its home's fresh region.
        for seq, home in enumerate(homes):
            assert assigner.fresh_start(home) <= seq <= assigner.last_seq(home)


def test_assigner_validation():
    with pytest.raises(ValueError):
        EventWindowAssigner("hopping", 4)
    with pytest.raises(ValueError):
        EventWindowAssigner("sliding", 4, 9)
    with pytest.raises(ValueError):
        EventWindowAssigner("tumbling", 0)
    with pytest.raises(ValueError):
        EventWindowAssigner("tumbling", 4).windows_of_seq(-1)
    # Tumbling ignores a supplied step, matching the legacy factory.
    assert EventWindowAssigner("tumbling", 4, 9).step == 4
