"""Tests for the AK-ICA hybrid attack and the known-sample sweep."""

import numpy as np
import pytest

from repro.attacks.ak_ica import AKICAAttack
from repro.attacks.base import build_context
from repro.core.perturbation import sample_perturbation
from repro.core.privacy import minimum_privacy_guarantee


@pytest.fixture
def X(rng):
    """Non-Gaussian independent columns (ICA-recoverable)."""
    n = 500
    return np.vstack(
        [
            rng.uniform(0, 1, size=n),
            rng.exponential(scale=0.25, size=n),
            rng.beta(0.4, 0.4, size=n),
            rng.uniform(0.1, 0.9, size=n),
        ]
    )


def make_context(X, noise_sigma, max_known, seed=0):
    rng = np.random.default_rng(seed)
    p = sample_perturbation(X.shape[0], rng, noise_sigma=noise_sigma)
    Y = np.asarray(p.apply(X, rng=rng if noise_sigma else None))
    return build_context(
        X,
        Y,
        known_fraction=1.0 if max_known else 0.0,
        max_known=max_known,
        rng=rng,
    )


class TestAKICA:
    def test_strong_reconstruction_with_pairs(self, X):
        context = make_context(X, noise_sigma=0.0, max_known=20)
        estimate = AKICAAttack().reconstruct(context)
        assert minimum_privacy_guarantee(X, estimate) < 0.15

    def test_estimate_shape(self, X):
        context = make_context(X, noise_sigma=0.05, max_known=10)
        assert AKICAAttack().reconstruct(context).shape == X.shape

    def test_falls_back_to_ica_without_pairs(self, X):
        context = make_context(X, noise_sigma=0.0, max_known=0)
        estimate = AKICAAttack().reconstruct(context)
        assert np.isfinite(estimate).all()

    def test_noise_leaves_residual_privacy(self, X):
        clean = make_context(X, noise_sigma=0.0, max_known=20, seed=1)
        noisy = make_context(X, noise_sigma=0.3, max_known=20, seed=1)
        attack = AKICAAttack()
        p_clean = minimum_privacy_guarantee(X, attack.reconstruct(clean))
        p_noisy = minimum_privacy_guarantee(X, attack.reconstruct(noisy))
        assert p_noisy > p_clean

    def test_ridge_validation(self):
        with pytest.raises(ValueError):
            AKICAAttack(ridge=-1)


class TestKnownSampleSweep:
    def test_sweep_structure_and_trend(self):
        from repro.analysis.experiments import known_sample_sweep

        rows = known_sample_sweep(
            dataset="iris", known_counts=(0, 10), noise_sigma=0.05, seed=0,
            max_rows=150,
        )
        assert [row["known_pairs"] for row in rows] == [0.0, 10.0]
        assert set(rows[0]) == {
            "known_pairs", "known_sample", "distance_inference", "ak_ica",
        }
        # More insider knowledge, less privacy under the plain regression.
        assert rows[1]["known_sample"] < rows[0]["known_sample"]
