"""ShardPlan: deterministic assignment, strategies, partitioning."""

import numpy as np
import pytest

from repro.sharding import SHARD_STRATEGIES, ShardPlan


def test_round_robin_windows_balanced():
    plan = ShardPlan(4)
    owners = [plan.shard_of_window(w) for w in range(16)]
    assert owners[:8] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(owners.count(s) == 4 for s in range(4))


def test_hash_strategy_is_deterministic_and_covers_shards():
    plan = ShardPlan(4, "hash", salt=7)
    owners = [plan.shard_of_window(w) for w in range(256)]
    assert owners == [ShardPlan(4, "hash", salt=7).shard_of_window(w)
                      for w in range(256)]
    assert set(owners) == {0, 1, 2, 3}
    # Balanced in expectation: no shard may hog the keys.
    counts = np.bincount(owners, minlength=4)
    assert counts.min() > 256 // 16


def test_hash_salt_changes_assignment():
    a = [ShardPlan(8, "hash", salt=0).shard_of_window(w) for w in range(64)]
    b = [ShardPlan(8, "hash", salt=1).shard_of_window(w) for w in range(64)]
    assert a != b


def test_party_strategy_routes_batches_by_party():
    plan = ShardPlan(2, "party", n_parties=3)
    # Every window's batch from party p goes to shard p % 2 ...
    for window in range(6):
        assert plan.shard_of_batch(window, 0) == 0
        assert plan.shard_of_batch(window, 1) == 1
        assert plan.shard_of_batch(window, 2) == 0
    # ... while window ownership stays round-robin.
    assert [plan.shard_of_window(w) for w in range(4)] == [0, 1, 0, 1]


def test_record_assignment_matches_strategy():
    rr = ShardPlan(3)
    assert [rr.shard_of_record(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]
    party = ShardPlan(2, "party", n_parties=4)
    assert party.shard_of_record(17, party=3) == 1
    with pytest.raises(ValueError):
        party.shard_of_record(0)  # party strategy needs the party index


def test_partition_indices_cover_and_are_disjoint():
    for strategy in SHARD_STRATEGIES:
        plan = ShardPlan(3, strategy, n_parties=3)
        parts = plan.partition_indices(20)
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(20))
        assert len(merged) == len(set(merged.tolist()))


def test_validation_errors():
    with pytest.raises(ValueError):
        ShardPlan(0)
    with pytest.raises(ValueError):
        ShardPlan(2, "bogus")
    with pytest.raises(ValueError):
        ShardPlan(2, "party")  # n_parties missing
    plan = ShardPlan(2)
    with pytest.raises(ValueError):
        plan.shard_of_window(-1)
    with pytest.raises(ValueError):
        plan.shard_of_record(-1)
    party = ShardPlan(2, "party", n_parties=2)
    with pytest.raises(ValueError):
        party.shard_of_batch(0, 5)


def test_single_shard_owns_everything():
    for strategy in SHARD_STRATEGIES:
        plan = ShardPlan(1, strategy, n_parties=3)
        assert {plan.shard_of_window(w) for w in range(10)} == {0}
        assert {plan.shard_of_batch(w, p) for w in range(5) for p in range(3)} == {0}
