"""Tests for the dataset statistics module."""

import numpy as np
import pytest

from repro.datasets.registry import load_dataset
from repro.datasets.schema import Dataset
from repro.datasets.statistics import (
    ColumnStats,
    class_balance,
    column_statistics,
    describe,
)


class TestColumnStatistics:
    def test_one_entry_per_column(self, small_dataset):
        stats = column_statistics(small_dataset)
        assert len(stats) == small_dataset.n_features
        assert all(isinstance(s, ColumnStats) for s in stats)

    def test_values_match_numpy(self, small_dataset):
        stats = column_statistics(small_dataset)
        column = small_dataset.X[:, 0]
        assert stats[0].minimum == pytest.approx(column.min())
        assert stats[0].maximum == pytest.approx(column.max())
        assert stats[0].mean == pytest.approx(column.mean())
        assert stats[0].std == pytest.approx(column.std())

    def test_binary_detection(self):
        X = np.column_stack([np.array([0.0, 1.0, 0.0, 1.0]), np.arange(4.0)])
        ds = Dataset(name="b", X=X, y=np.zeros(4, dtype=int))
        stats = column_statistics(ds)
        assert stats[0].looks_binary
        assert not stats[1].looks_binary

    def test_constant_column_has_zero_skew(self):
        X = np.column_stack([np.ones(5), np.arange(5.0)])
        ds = Dataset(name="c", X=X, y=np.zeros(5, dtype=int))
        stats = column_statistics(ds)
        assert stats[0].skewness == 0.0
        assert stats[0].std == 0.0

    def test_votes_columns_are_binary(self):
        stats = column_statistics(load_dataset("votes"))
        assert all(s.looks_binary for s in stats)


class TestClassBalance:
    def test_fractions_sum_to_one(self, multiclass_dataset):
        balance = class_balance(multiclass_dataset)
        assert sum(balance.values()) == pytest.approx(1.0)
        assert set(balance) == {0, 1, 2}

    def test_shuttle_skew_visible(self):
        balance = class_balance(load_dataset("shuttle"))
        assert balance[0] > 0.7


class TestDescribe:
    def test_contains_shape_and_columns(self, small_dataset):
        text = describe(small_dataset)
        assert f"{small_dataset.n_rows} rows" in text
        assert "f0" in text
        assert "classes" in text

    def test_truncates_wide_tables(self):
        ds = load_dataset("ionosphere")
        text = describe(ds, max_columns=5)
        assert "more columns" in text


class TestCLIDetail:
    def test_datasets_detail_command(self, capsys):
        from repro.cli import main

        assert main(["datasets", "--detail", "iris"]) == 0
        out = capsys.readouterr().out
        assert "150 rows x 4 columns" in out
