"""Tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["unknown-command"])


def test_datasets_command(capsys):
    out = run_cli(capsys, "datasets")
    assert "iris" in out and "shuttle" in out


def test_fig2_command(capsys):
    out = run_cli(capsys, "fig2", "--dataset", "iris", "--rounds", "4")
    assert "Figure 2" in out
    assert "optimized perturbations" in out


def test_fig4_command(capsys):
    out = run_cli(capsys, "fig4")
    assert "Figure 4" in out
    assert "shuttle" in out


def test_risk_command(capsys):
    out = run_cli(capsys, "risk", "--runs", "200")
    assert "identifiability" in out
    assert "analytic" in out


def test_session_command(capsys):
    out = run_cli(capsys, "session", "--dataset", "iris", "--k", "3")
    assert "SAP session" in out
    assert "deviation" in out


def test_session_command_with_svm(capsys):
    out = run_cli(
        capsys, "session", "--dataset", "iris", "--k", "3",
        "--classifier", "linear_svm",
    )
    assert "linear_svm" in out


def test_ablation_noise_command(capsys):
    out = run_cli(capsys, "ablation", "--which", "noise", "--dataset", "iris")
    assert "sigma" in out


def test_ablation_optimizer_command(capsys):
    out = run_cli(capsys, "ablation", "--which", "optimizer", "--dataset", "iris")
    assert "hill_climbing" in out


def test_fig3_command_small(capsys):
    out = run_cli(
        capsys, "fig3", "--rounds", "2", "--k-min", "3", "--k-max", "4"
    )
    assert "Figure 3" in out
    assert "diabetes" in out
