"""Tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["unknown-command"])


def test_datasets_command(capsys):
    out = run_cli(capsys, "datasets")
    assert "iris" in out and "shuttle" in out


def test_fig2_command(capsys):
    out = run_cli(capsys, "fig2", "--dataset", "iris", "--rounds", "4")
    assert "Figure 2" in out
    assert "optimized perturbations" in out


def test_fig4_command(capsys):
    out = run_cli(capsys, "fig4")
    assert "Figure 4" in out
    assert "shuttle" in out


def test_risk_command(capsys):
    out = run_cli(capsys, "risk", "--runs", "200")
    assert "identifiability" in out
    assert "analytic" in out


def test_session_command(capsys):
    out = run_cli(capsys, "session", "--dataset", "iris", "--k", "3")
    assert "SAP session" in out
    assert "deviation" in out


def test_session_command_with_svm(capsys):
    out = run_cli(
        capsys, "session", "--dataset", "iris", "--k", "3",
        "--classifier", "linear_svm",
    )
    assert "linear_svm" in out


def test_ablation_noise_command(capsys):
    out = run_cli(capsys, "ablation", "--which", "noise", "--dataset", "iris")
    assert "sigma" in out


def test_ablation_optimizer_command(capsys):
    out = run_cli(capsys, "ablation", "--which", "optimizer", "--dataset", "iris")
    assert "hill_climbing" in out


def test_fig3_command_small(capsys):
    out = run_cli(
        capsys, "fig3", "--rounds", "2", "--k-min", "3", "--k-max", "4"
    )
    assert "Figure 3" in out
    assert "diabetes" in out


def test_stream_command(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "6",
        "--window-size", "32", "--seed", "0",
    )
    assert "Streaming SAP" in out
    assert "re-adaptations" in out
    assert "throughput" in out
    assert "accuracy deviation over time" in out
    assert "initial" in out


def test_stream_command_with_trust_change(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "6",
        "--window-size", "32", "--trust-change", "3:0:0.5",
    )
    assert "trust" in out


def test_unknown_dataset_exits_cleanly(capsys):
    code = main(["session", "--dataset", "atlantis"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert "unknown dataset" in captured.err
    assert "Traceback" not in captured.err


def test_unknown_dataset_in_stream_exits_cleanly(capsys):
    code = main(["stream", "--dataset", "atlantis", "--windows", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown dataset" in captured.err


def test_malformed_trust_change_exits_cleanly(capsys):
    code = main(["stream", "--dataset", "iris", "--trust-change", "nonsense"])
    captured = capsys.readouterr()
    assert code == 2
    assert "trust-change" in captured.err


def test_stream_command_with_shards(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "4",
        "--window-size", "32", "--shards", "2", "--shard-backend", "thread",
    )
    assert "shards            : 2" in out
    assert "shard traffic" in out


@pytest.mark.parametrize(
    "flag,value",
    [
        ("--windows", "0"),
        ("--windows", "-3"),
        ("--window-size", "0"),
        ("--window-step", "0"),
        ("--shards", "0"),
        ("--shards", "-1"),
    ],
)
def test_non_positive_stream_budgets_exit_cleanly(capsys, flag, value):
    code = main(["stream", "--dataset", "iris", flag, value])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert flag in captured.err
    assert "positive integer" in captured.err
    assert "Traceback" not in captured.err


def test_unknown_subcommand_exits_with_usage(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["not-a-command"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err
