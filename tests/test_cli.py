"""Tests for the CLI entry point."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["unknown-command"])


def test_datasets_command(capsys):
    out = run_cli(capsys, "datasets")
    assert "iris" in out and "shuttle" in out


def test_fig2_command(capsys):
    out = run_cli(capsys, "fig2", "--dataset", "iris", "--rounds", "4")
    assert "Figure 2" in out
    assert "optimized perturbations" in out


def test_fig4_command(capsys):
    out = run_cli(capsys, "fig4")
    assert "Figure 4" in out
    assert "shuttle" in out


def test_risk_command(capsys):
    out = run_cli(capsys, "risk", "--runs", "200")
    assert "identifiability" in out
    assert "analytic" in out


def test_session_command(capsys):
    out = run_cli(capsys, "session", "--dataset", "iris", "--k", "3")
    assert "SAP session" in out
    assert "deviation" in out


def test_session_command_with_svm(capsys):
    out = run_cli(
        capsys, "session", "--dataset", "iris", "--k", "3",
        "--classifier", "linear_svm",
    )
    assert "linear_svm" in out


def test_ablation_noise_command(capsys):
    out = run_cli(capsys, "ablation", "--which", "noise", "--dataset", "iris")
    assert "sigma" in out


def test_ablation_optimizer_command(capsys):
    out = run_cli(capsys, "ablation", "--which", "optimizer", "--dataset", "iris")
    assert "hill_climbing" in out


def test_fig3_command_small(capsys):
    out = run_cli(
        capsys, "fig3", "--rounds", "2", "--k-min", "3", "--k-max", "4"
    )
    assert "Figure 3" in out
    assert "diabetes" in out


def test_stream_command(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "6",
        "--window-size", "32", "--seed", "0",
    )
    assert "Streaming SAP" in out
    assert "re-adaptations" in out
    assert "throughput" in out
    assert "accuracy deviation over time" in out
    assert "initial" in out


def test_stream_command_with_trust_change(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "6",
        "--window-size", "32", "--trust-change", "3:0:0.5",
    )
    assert "trust" in out


def test_unknown_dataset_exits_cleanly(capsys):
    code = main(["session", "--dataset", "atlantis"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert "unknown dataset" in captured.err
    assert "Traceback" not in captured.err


def test_unknown_dataset_in_stream_exits_cleanly(capsys):
    code = main(["stream", "--dataset", "atlantis", "--windows", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown dataset" in captured.err


def test_malformed_trust_change_exits_cleanly(capsys):
    code = main(["stream", "--dataset", "iris", "--trust-change", "nonsense"])
    captured = capsys.readouterr()
    assert code == 2
    assert "trust-change" in captured.err


def test_stream_command_with_shards(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "4",
        "--window-size", "32", "--shards", "2", "--shard-backend", "thread",
    )
    assert "shards            : 2" in out
    assert "shard traffic" in out


@pytest.mark.parametrize(
    "flag,value",
    [
        ("--windows", "0"),
        ("--windows", "-3"),
        ("--window-size", "0"),
        ("--window-step", "0"),
        ("--shards", "0"),
        ("--shards", "-1"),
    ],
)
def test_non_positive_stream_budgets_exit_cleanly(capsys, flag, value):
    code = main(["stream", "--dataset", "iris", flag, value])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert flag in captured.err
    assert "positive integer" in captured.err
    assert "Traceback" not in captured.err


@pytest.mark.parametrize(
    "flag,value",
    [("--skew", "-1"), ("--skew", "-7"), ("--watermark", "-1")],
)
def test_negative_event_time_flags_exit_cleanly(capsys, flag, value):
    code = main(["stream", "--dataset", "iris", flag, value])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert flag in captured.err
    assert "non-negative integer" in captured.err
    assert "Traceback" not in captured.err


def test_unknown_late_policy_exits_with_usage(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["stream", "--dataset", "iris", "--late-policy", "vanish"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_stream_out_of_order_text_output(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "4",
        "--window-size", "32", "--skew", "6", "--watermark", "2",
        "--late-policy", "readmit",
    )
    assert "ingestion" in out
    assert "event-time ingestion per provider" in out
    assert "max skew" in out


def test_stream_out_of_order_json_reports_ingest_counters(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "4",
        "--window-size", "32", "--skew", "6", "--watermark", "2",
        "--late-policy", "readmit", "--json",
    )
    payload = json.loads(out)
    ingest = payload["ingest"]
    assert ingest["records"] == payload["records_processed"]
    assert ingest["max_skew"] > 0
    assert ingest["readmitted"] == ingest["late"]
    assert len(ingest["providers"]) == 3
    assert {"late", "dropped", "readmitted", "upserted", "max_skew"} <= set(
        ingest["providers"][0]
    )


def test_session_json_output(capsys):
    out = run_cli(capsys, "session", "--dataset", "iris", "--k", "3", "--json")
    payload = json.loads(out)
    assert payload["kind"] == "batch"
    assert payload["k"] == 3
    assert "accuracy_perturbed" in payload


def test_stream_json_output(capsys):
    out = run_cli(
        capsys, "stream", "--dataset", "iris", "--windows", "3",
        "--window-size", "32", "--json",
    )
    payload = json.loads(out)
    assert payload["kind"] == "stream"
    assert payload["n_windows"] == 3
    assert len(payload["deviation_series"]) == 3


def test_invalid_session_k_exits_cleanly(capsys):
    code = main(["session", "--dataset", "iris", "--k", "1"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert "k >= 2" in captured.err
    assert "Traceback" not in captured.err


def test_serve_demo_workload(capsys):
    out = run_cli(
        capsys, "serve", "--sessions", "4", "--shards", "2",
        "--max-inflight", "2",
    )
    assert "Serving engine" in out
    assert "pool utilization" in out
    assert "tenant acme" in out and "tenant globex" in out
    assert "completed" in out


def test_serve_json_output(capsys):
    out = run_cli(
        capsys, "serve", "--sessions", "2", "--shards", "2", "--json"
    )
    payload = json.loads(out)
    assert len(payload["sessions"]) == 2
    assert all(s["status"] == "completed" for s in payload["sessions"])
    assert payload["service"]["completed"] == 2
    assert payload["service"]["pool"]["workers"] == 2


def test_serve_workload_file(capsys, tmp_path):
    workload = {
        "sessions": [
            {"kind": "batch", "dataset": "iris", "k": 3, "tenant": "acme"},
            {
                "kind": "stream", "dataset": "iris", "k": 3, "windows": 2,
                "window_size": 32, "compute_privacy": False,
            },
        ]
    }
    path = tmp_path / "workload.json"
    path.write_text(json.dumps(workload))
    out = run_cli(capsys, "serve", "--workload", str(path), "--json")
    payload = json.loads(out)
    assert [s["status"] for s in payload["sessions"]] == ["completed"] * 2


def test_serve_bad_workload_field_exits_cleanly(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([{"kind": "batch", "classifierr": "knn"}]))
    code = main(["serve", "--workload", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "classifierr" in captured.err
    assert "Traceback" not in captured.err


def test_serve_failed_session_exits_1_with_error_text(capsys, tmp_path):
    # "atlantis" passes spec validation (dataset names resolve at run time)
    # but fails inside the engine; the CLI must surface that and exit 1.
    path = tmp_path / "failing.json"
    path.write_text(json.dumps([
        {"kind": "batch", "dataset": "atlantis", "k": 3},
        {"kind": "batch", "dataset": "iris", "k": 3},
    ]))
    code = main(["serve", "--workload", str(path), "--json"])
    captured = capsys.readouterr()
    assert code == 1
    payload = json.loads(captured.out)
    statuses = [s["status"] for s in payload["sessions"]]
    assert statuses == ["failed", "completed"]
    assert "atlantis" in payload["sessions"][0]["error"]
    assert payload["sessions"][1]["error"] is None

    code = main(["serve", "--workload", str(path)])
    captured = capsys.readouterr()
    assert code == 1
    assert "failed" in captured.out
    assert "atlantis" in captured.out


def test_serve_missing_workload_file_exits_cleanly(capsys):
    code = main(["serve", "--workload", "/nonexistent/workload.json"])
    captured = capsys.readouterr()
    assert code == 2
    assert "workload" in captured.err


def test_serve_non_positive_budgets_exit_cleanly(capsys):
    for flag in ("--sessions", "--max-inflight", "--shards"):
        code = main(["serve", flag, "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert flag in captured.err


def test_unknown_subcommand_exits_with_usage(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["not-a-command"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def _spans_file(tmp_path, name="spans.jsonl", rounds=2):
    path = tmp_path / name
    lines = []
    for round_id in range(rounds):
        lines.append(json.dumps({
            "name": "control", "span_id": round_id, "parent_id": None,
            "start": 0.0, "duration": 0.01, "attrs": {"round": round_id},
        }))
    path.write_text("\n".join(lines) + "\n")
    return path


def test_report_command_single_file(capsys, tmp_path):
    path = _spans_file(tmp_path)
    out = run_cli(capsys, "report", str(path))
    assert "Span latency report" in out
    assert str(path) in out
    assert "per-stage latency (ms)" in out


def test_report_command_merges_multiple_sources(capsys, tmp_path):
    one = _spans_file(tmp_path, "one.jsonl")
    nested = tmp_path / "runs" / "000-a"
    nested.mkdir(parents=True)
    _spans_file(nested, "spans.jsonl")
    out = run_cli(capsys, "report", str(one), str(tmp_path / "runs"))
    assert "2 span files merged" in out
    assert "(4 spans)" in out


def test_report_command_empty_directory_exits_cleanly(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    code = main(["report", str(empty)])
    captured = capsys.readouterr()
    assert code == 2
    assert "no *.jsonl span files" in captured.err


def _experiment_config(tmp_path):
    path = tmp_path / "exp.json"
    path.write_text(json.dumps({
        "name": "clitest",
        "base": {
            "kind": "stream", "dataset": "wine", "k": 3, "windows": 1,
            "window_size": 32, "compute_privacy": False, "seed": 0,
        },
        "factors": {"shards": [1, 2]},
    }))
    return path


def test_experiment_run_report_and_resume(capsys, tmp_path):
    config = _experiment_config(tmp_path)
    results = str(tmp_path / "results")
    out = run_cli(
        capsys, "experiment", "run", str(config),
        "--results", results, "--timestamp", "t0",
    )
    assert "Experiment run - clitest" in out
    assert "2 cells: 2 executed, 0 resumed, 0 failed" in out
    assert "000-shards=1-r0" in out and "rec/s" in out
    # a second run resumes every cell
    out = run_cli(capsys, "experiment", "run", str(config), "--results", results)
    assert "0 executed, 2 resumed" in out
    # the report stage joins the persisted artifacts
    report_out = run_cli(
        capsys, "experiment", "report", str(tmp_path / "results" / "clitest")
    )
    assert "# Experiment report — clitest" in report_out
    assert "## Throughput by factor" in report_out
    # --html --out writes a standalone page
    html_path = tmp_path / "report.html"
    run_cli(
        capsys, "experiment", "report",
        str(tmp_path / "results" / "clitest"),
        "--html", "--out", str(html_path),
    )
    assert html_path.read_text().startswith("<!DOCTYPE html>")
    # the merged multi-file span report reads the same directory
    out = run_cli(capsys, "report", str(tmp_path / "results" / "clitest"))
    assert "span files merged" in out


def test_experiment_run_bad_config_exits_cleanly(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"name": "x", "factors": {"shards": [1]}, "oops": 1}))
    code = main(["experiment", "run", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
    assert "oops" in captured.err
    code = main(["experiment", "run", str(tmp_path / "missing.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot read" in captured.err


def test_experiment_gate_pass_and_fail(capsys, tmp_path):
    from repro.obs.experiment import machine_fingerprint

    def trajectory(path, rate):
        path.write_text(json.dumps({
            "bench": "overlap",
            "entries": [{
                "timestamp": "t0",
                "machine": machine_fingerprint(),
                "metrics": {"shards=2": {"serial_records_per_s": rate}},
            }],
        }))
        return str(path)

    baseline = trajectory(tmp_path / "base.json", 1000.0)
    good = trajectory(tmp_path / "good.json", 950.0)
    bad = trajectory(tmp_path / "bad.json", 500.0)

    out = run_cli(
        capsys, "experiment", "gate", "--baseline", baseline, "--current", good
    )
    assert "gate: PASS" in out
    code = main(
        ["experiment", "gate", "--baseline", baseline, "--current", bad]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "gate: FAIL" in captured.out
    assert "REGRESSION" in captured.out
    # tolerance is a percentage on the CLI
    code = main([
        "experiment", "gate", "--baseline", baseline, "--current", good,
        "--tolerance", "2",
    ])
    captured = capsys.readouterr()
    assert code == 1 and "FAIL" in captured.out
    code = main([
        "experiment", "gate", "--baseline", baseline, "--current", good,
        "--tolerance", "150",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "--tolerance" in captured.err


# ----------------------------------------------------------------------
# cluster command
# ----------------------------------------------------------------------
def test_cluster_demo_workload(capsys):
    out = run_cli(
        capsys, "cluster", "--sessions", "4", "--replicas", "2",
        "--dataset", "wine", "--seed", "1",
    )
    assert "Cluster - 4 sessions over 2 inprocess replicas" in out
    assert "hash placement" in out
    assert "replica 0" in out and "replica 1" in out
    assert "tenant acme" in out and "tenant globex" in out


def test_cluster_json_matches_single_engine_serve(capsys, tmp_path):
    workload = [
        {
            "kind": "stream", "dataset": "wine", "tenant": "acme",
            "k": 3, "windows": 6, "window_size": 32,
            "compute_privacy": False, "seed": i,
        }
        for i in range(3)
    ]
    path = tmp_path / "workload.json"
    path.write_text(json.dumps(workload))
    serve_out = run_cli(
        capsys, "serve", "--workload", str(path), "--json"
    )
    cluster_out = run_cli(
        capsys, "cluster", "--workload", str(path), "--replicas", "2",
        "--migrate-every", "1", "--checkpoint-dir", str(tmp_path / "ck"),
        "--json",
    )
    single = json.loads(serve_out)["sessions"]
    clustered = json.loads(cluster_out)["sessions"]
    assert len(single) == len(clustered) == 3
    for a, b in zip(single, clustered):
        assert a["label"] == b["label"]
        for key in (
            "deviation_series", "messages_sent", "bytes_sent",
            "data_messages_sent", "data_bytes_sent",
        ):
            assert a["result"][key] == b["result"][key]
    payload = json.loads(cluster_out)
    assert payload["cluster"]["replicas"] == 2
    assert payload["cluster"]["completed"] == 3
    assert payload["cluster"]["migrations"] == len(payload["migrations"])


def test_cluster_placement_and_budget_flags_validated(capsys):
    code = main(["cluster", "--replicas", "0"])
    captured = capsys.readouterr()
    assert code == 2 and "--replicas" in captured.err
    code = main(["cluster", "--migrate-every", "-1"])
    captured = capsys.readouterr()
    assert code == 2 and "--migrate-every" in captured.err
    with pytest.raises(SystemExit):
        build_parser().parse_args(["cluster", "--placement", "nope"])


# ----------------------------------------------------------------------
# checkpoint directory inspection + retention
# ----------------------------------------------------------------------
def _checkpoint_dir(capsys, tmp_path, retain=None):
    directory = tmp_path / "ckpts"
    argv = [
        "stream", "--dataset", "wine", "--windows", "8",
        "--window-size", "32", "--checkpoint-dir", str(directory),
        "--checkpoint-every", "2",
    ]
    if retain is not None:
        argv += ["--checkpoint-retain", str(retain)]
    run_cli(capsys, *argv)
    return directory


def test_stream_checkpoint_retain_prunes_old_files(capsys, tmp_path):
    directory = _checkpoint_dir(capsys, tmp_path, retain=2)
    files = sorted(p.name for p in directory.glob("*.ckpt"))
    assert len(files) == 2
    assert files[-1].endswith("-w00006.ckpt")


def test_stream_checkpoint_retain_needs_dir(capsys):
    code = main(["stream", "--checkpoint-retain", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--checkpoint-dir" in captured.err


def test_checkpoint_inspect_directory_lists_and_prunes(capsys, tmp_path):
    directory = _checkpoint_dir(capsys, tmp_path)
    before = len(list(directory.glob("*.ckpt")))
    assert before >= 3
    out = run_cli(capsys, "checkpoint", "inspect", str(directory))
    assert f"({before} files)" in out
    assert "fingerprint" in out
    pruned = run_cli(
        capsys, "checkpoint", "inspect", str(directory), "--retain", "1",
        "--json",
    )
    payload = json.loads(pruned)
    assert len(payload["checkpoints"]) == 1
    assert len(payload["pruned"]) == before - 1
    assert len(list(directory.glob("*.ckpt"))) == 1


def test_checkpoint_inspect_retain_on_file_exits_cleanly(capsys, tmp_path):
    directory = _checkpoint_dir(capsys, tmp_path)
    target = next(directory.glob("*.ckpt"))
    code = main(["checkpoint", "inspect", str(target), "--retain", "1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "directory" in captured.err


def test_checkpoint_inspect_empty_directory(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    out = run_cli(capsys, "checkpoint", "inspect", str(empty))
    assert "no checkpoint files" in out


# ----------------------------------------------------------------------
# serve: durable sessions + park-on-interrupt resume hints
# ----------------------------------------------------------------------
def test_serve_checkpoint_every_needs_dir(capsys):
    code = main(["serve", "--checkpoint-every", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--checkpoint-dir" in captured.err


def test_serve_interrupt_parks_sessions_with_resume_hints(
    capsys, tmp_path, monkeypatch
):
    from repro.serve import MiningService

    workload = [
        {
            "kind": "stream", "dataset": "wine", "tenant": "acme",
            "k": 3, "windows": 40, "window_size": 32,
            "compute_privacy": False, "seed": 0,
        }
    ]
    path = tmp_path / "workload.json"
    path.write_text(json.dumps(workload))

    real_drain = MiningService.drain

    def interrupted_drain(self, *args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(MiningService, "drain", interrupted_drain)
    code = main([
        "serve", "--workload", str(path),
        "--checkpoint-dir", str(tmp_path / "ck"), "--checkpoint-every", "2",
    ])
    captured = capsys.readouterr()
    monkeypatch.setattr(MiningService, "drain", real_drain)
    assert code == 130
    assert "interrupted" in captured.err
    assert "parked live sessions:" in captured.err
    assert "repro stream --resume-from" in captured.err
    # The hinted checkpoint file exists and resumes to completion.
    parked = [
        line.split("--resume-from", 1)[1].strip()
        for line in captured.err.splitlines()
        if "--resume-from" in line
    ]
    assert len(parked) == 1
    out = run_cli(capsys, "stream", "--resume-from", parked[0], "--json")
    assert json.loads(out)["records_processed"] == 40 * 32


# ----------------------------------------------------------------------
# experiment diff
# ----------------------------------------------------------------------
def test_experiment_diff_pass_and_fail(capsys, tmp_path):
    config = _experiment_config(tmp_path)
    dir_a = str(tmp_path / "a")
    dir_b = str(tmp_path / "b")
    run_cli(capsys, "experiment", "run", str(config), "--results", dir_a,
            "--timestamp", "t0")
    run_cli(capsys, "experiment", "run", str(config), "--results", dir_b,
            "--timestamp", "t1")
    out = run_cli(
        capsys, "experiment", "diff", f"{dir_a}/clitest", f"{dir_b}/clitest",
        "--tolerance", "99",
    )
    assert "diff: PASS" in out
    assert "records_per_s" in out
    # an absurd negative-tolerance percentage is a usage error
    code = main([
        "experiment", "diff", f"{dir_a}/clitest", f"{dir_b}/clitest",
        "--tolerance", "150",
    ])
    captured = capsys.readouterr()
    assert code == 2 and "--tolerance" in captured.err
    # a missing directory is a friendly error, not a traceback
    code = main(["experiment", "diff", f"{dir_a}/clitest", str(tmp_path / "nope")])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.err.startswith("error:")
