"""Pipelined rounds: overlap must never change a single bit of a result.

The contract under test: ``overlap=True`` (double-buffered round
dispatch) reproduces the ``overlap=False`` fingerprints exactly, across
backends, shard counts, plans, skew/late-policy settings, and
re-negotiation schedules.  Overlap may reorder *execution*; it may never
reorder gathering, merging, noise keying, or negotiation points.
"""

import pytest

from repro.streaming import StreamConfig, TrustChange, make_stream, run_stream_session


def _fingerprint(result):
    """Everything deterministic a stream result reports."""
    return {
        "records": result.records_processed,
        "windows": [
            (w.index, w.revision, w.n_records, w.accuracy_perturbed,
             w.accuracy_baseline, w.drift_statistic, w.readapted)
            for w in result.windows
        ],
        "events": [
            (e.window, e.reason, e.statistic, e.messages, e.bytes,
             e.virtual_duration, e.privacy_guarantee)
            for e in result.events
        ],
        "accuracy": (result.accuracy_perturbed, result.accuracy_baseline),
        # shard_records is intentionally absent: per-shard routing counts
        # depend on the shard count by definition (their *sum* is pinned
        # via provider_records and the traffic totals).
        "traffic": (result.messages_sent, result.bytes_sent,
                    result.data_messages_sent, result.data_bytes_sent),
        "provider_records": result.provider_records,
        "ingest": None if result.ingest is None else result.ingest.to_dict(),
    }


def _run(source_seed=3, **knobs):
    source = make_stream(
        "iris", kind=knobs.pop("stream", "abrupt"), n_records=6 * 32,
        seed=source_seed,
    )
    config = StreamConfig(
        k=3, window_size=32, compute_privacy=False, seed=7, **knobs
    )
    return run_stream_session(source, config)


@pytest.fixture(scope="module")
def reference():
    """The serial-dispatch reference fingerprint (shards=1, serial)."""
    return _fingerprint(_run(shards=1, shard_backend="serial", overlap=False))


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("shards", [1, 4])
def test_overlap_bit_identical_across_backends_and_shards(
    reference, backend, shards
):
    result = _run(shards=shards, shard_backend=backend, overlap=True)
    assert _fingerprint(result) == reference
    # The effective flag reports what actually happened: pool backends
    # pipeline, the serial backend ignores the request (inline dispatch).
    assert result.overlap is (backend != "serial")


def test_overlap_default_is_on_for_pool_backends_and_identical(reference):
    auto = _run(shards=4, shard_backend="thread")  # overlap unset -> auto
    assert auto.overlap is True
    assert _fingerprint(auto) == reference
    forced_off = _run(shards=4, shard_backend="thread", overlap=False)
    assert forced_off.overlap is False
    assert _fingerprint(forced_off) == reference


@pytest.mark.parametrize("plan", ["hash", "party"])
def test_overlap_bit_identical_across_plans(plan):
    # Compared at the same plan: the ``party`` plan legitimately adds
    # data-plane forward hops, so its traffic differs from round_robin —
    # overlap must still reproduce serial dispatch hop for hop.
    serial = _run(shards=4, shard_backend="serial", shard_plan=plan, overlap=False)
    pipelined = _run(shards=4, shard_backend="thread", shard_plan=plan, overlap=True)
    assert _fingerprint(pipelined) == _fingerprint(serial)


@pytest.mark.parametrize("late_policy", ["drop", "readmit", "upsert"])
def test_overlap_bit_identical_under_skew(late_policy):
    """Out-of-order arrivals: overlap == serial dispatch, policy by policy."""
    knobs = dict(
        shards=4, skew=8, watermark_delay=1, late_policy=late_policy
    )
    serial = _run(shard_backend="serial", overlap=False, **knobs)
    pipelined = _run(shard_backend="thread", overlap=True, **knobs)
    assert _fingerprint(pipelined) == _fingerprint(serial)
    assert serial.ingest.late > 0  # the sweep actually exercised lateness


def test_overlap_bit_identical_across_renegotiations():
    """Trust changes force mid-stream re-negotiations — the drain rule's
    path — and the pipelined run must still match serial dispatch."""
    changes = (TrustChange(window=1, party=0, trust=0.5),
               TrustChange(window=3, party=1, trust=0.25))
    serial = _run(
        stream="gradual", shards=2, shard_backend="serial",
        overlap=False, trust_changes=changes, readapt_cooldown=1,
    )
    pipelined = _run(
        stream="gradual", shards=2, shard_backend="thread",
        overlap=True, trust_changes=changes, readapt_cooldown=1,
    )
    assert len(serial.events) >= 3  # initial + both trust renegotiations
    assert _fingerprint(pipelined) == _fingerprint(serial)


def test_config_rejects_non_bool_overlap():
    with pytest.raises(ValueError, match="overlap"):
        StreamConfig(overlap="yes")
