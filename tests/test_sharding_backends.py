"""Executor backends: ordered results, equivalence, lifecycle, metering."""

import threading
import time

import numpy as np
import pytest

from repro.sharding import (
    MeteredBackend,
    ProcessBackend,
    SerialBackend,
    ShardPool,
    ShardPlan,
    ThreadBackend,
    make_backend,
)
from repro.sharding.worker import transform_window


def _square(task):
    return task * task


def test_serial_backend_preserves_order():
    assert SerialBackend().map(_square, list(range(10))) == [
        i * i for i in range(10)
    ]


@pytest.mark.parametrize("backend_cls", [ThreadBackend, ProcessBackend])
def test_pool_backends_match_serial(backend_cls):
    tasks = list(range(20))
    expected = SerialBackend().map(_square, tasks)
    with backend_cls(n_workers=3) as backend:
        assert backend.map(_square, tasks) == expected


def test_empty_task_list_is_fine():
    for kind in ("serial", "thread", "process"):
        with make_backend(kind, 2) as backend:
            assert backend.map(_square, []) == []


def test_make_backend_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_backend("gpu")
    with pytest.raises(ValueError):
        ThreadBackend(0)


def test_pool_survives_close_and_reuse():
    backend = ThreadBackend(2)
    assert backend.map(_square, [1, 2]) == [1, 4]
    backend.close()
    backend.close()  # idempotent
    # A fresh pool is created lazily on the next map.
    assert backend.map(_square, [3]) == [9]
    backend.close()


# ----------------------------------------------------------------------
# asynchronous dispatch (submit_map / ShardFutures)
# ----------------------------------------------------------------------
def test_serial_submit_map_is_already_completed():
    handle = SerialBackend().submit_map(_square, [1, 2, 3])
    assert handle.done()
    assert handle.gather() == [1, 4, 9]


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_submit_map_gathers_in_task_order(kind):
    tasks = list(range(25))
    with make_backend(kind, 3) as backend:
        handle = backend.submit_map(_square, tasks)
        assert handle.gather() == [i * i for i in tasks]


def test_submit_map_empty_tasks():
    with ThreadBackend(2) as backend:
        handle = backend.submit_map(_square, [])
        assert handle.done() and handle.gather() == []


def test_submit_map_overlaps_with_driver_work():
    """The driver stays free between submit and gather on a pool backend."""
    gate = threading.Event()

    def wait_then_square(task):
        assert gate.wait(timeout=30)
        return task * task

    with ThreadBackend(2) as backend:
        assert backend.supports_overlap
        handle = backend.submit_map(wait_then_square, [1, 2])
        assert not handle.done()  # tasks are parked on the gate
        gate.set()  # "driver work" done; now gather
        assert handle.gather() == [1, 4]
    assert not SerialBackend().supports_overlap


# ----------------------------------------------------------------------
# fail-fast: a poisoned task cancels the rest of its dispatch
# ----------------------------------------------------------------------
def test_map_cancels_outstanding_tasks_on_first_failure():
    executed = []

    def poisoned(task):
        if task == 0:
            time.sleep(0.02)
            raise RuntimeError("poisoned task")
        executed.append(task)
        time.sleep(0.02)
        return task

    n_tasks = 64
    with ThreadBackend(2) as backend:
        with pytest.raises(RuntimeError, match="poisoned task"):
            backend.map(poisoned, list(range(n_tasks)))
    # While task 0 ran (and failed), the second worker got through at most
    # a couple of tasks; everything still queued was cancelled instead of
    # running to completion behind the dead round's back.
    assert len(executed) < n_tasks // 2


def test_serial_map_stops_at_first_failure():
    executed = []

    def poisoned(task):
        if task == 3:
            raise RuntimeError("poisoned task")
        executed.append(task)
        return task

    with pytest.raises(RuntimeError, match="poisoned task"):
        SerialBackend().map(poisoned, list(range(10)))
    assert executed == [0, 1, 2]


# ----------------------------------------------------------------------
# metering: worker-occupancy busy time, utilization <= 1
# ----------------------------------------------------------------------
def _nap(seconds):
    time.sleep(seconds)
    return seconds


def test_metered_busy_time_counts_concurrent_spans_once():
    """Overlapping dispatches from many drivers share the pool's capacity
    in the ledger instead of being double-counted — utilization <= 1."""
    metered = MeteredBackend(ThreadBackend(2))
    began = time.perf_counter()
    drivers = [
        threading.Thread(target=lambda: metered.map(_nap, [0.03, 0.03]))
        for _ in range(4)
    ]
    for t in drivers:
        t.start()
    for t in drivers:
        t.join()
    elapsed = time.perf_counter() - began
    assert metered.tasks_dispatched == 8
    assert metered.batches_dispatched == 4
    assert metered.busy_seconds > 0
    # 4 concurrent 2-task batches on a 2-worker pool: demand is 4x the
    # capacity, the occupancy ledger must still stay within it.
    assert metered.busy_seconds <= 2 * elapsed + 1e-6
    assert metered.utilization(elapsed) <= 1.0
    metered.close()


def test_metered_accounts_async_spans_from_submit():
    """An async dispatch is busy from submit on, not just while a driver
    blocks inside map()."""
    metered = MeteredBackend(ThreadBackend(2))
    handle = metered.submit_map(_nap, [0.05])
    time.sleep(0.02)  # driver-side work while the task runs
    assert metered.batches_dispatched == 0  # span still open
    handle.gather()
    assert metered.batches_dispatched == 1
    assert metered.tasks_dispatched == 1
    # The span covers the task's whole execution (>= task time).
    assert metered.busy_seconds >= 0.04
    metered.close()


def test_metered_span_closes_when_work_ends_not_at_late_gather():
    """A handle the driver is slow to gather must not count idle workers
    as busy: the span closes when the last task settles."""
    metered = MeteredBackend(ThreadBackend(2))
    handle = metered.submit_map(_nap, [0.02])
    time.sleep(0.15)  # work finished long ago; the driver dawdles
    assert handle.gather() == [0.02]
    assert metered.busy_seconds < 0.1  # ~0.02, definitely not ~0.17
    metered.close()


def test_metered_span_settles_exactly_once():
    """gather() and cancel() on the same handle close its span once."""
    metered = MeteredBackend(ThreadBackend(2))
    handle = metered.submit_map(_square, [1, 2])
    assert handle.gather() == [1, 4]
    handle.cancel()  # racing/late cancellers must not re-close the span
    assert metered.batches_dispatched == 1
    assert metered.tasks_dispatched == 2
    assert metered._active_weight == 0  # the ledger balanced
    metered.close()


def test_metered_empty_dispatch_opens_no_span():
    metered = MeteredBackend(ThreadBackend(2))
    handle = metered.submit_map(_square, [])
    time.sleep(0.02)  # a phantom span would integrate over this wait
    assert handle.gather() == []
    assert metered.batches_dispatched == 1
    assert metered.tasks_dispatched == 0
    assert metered.busy_seconds == 0.0
    metered.close()


def test_metered_utilization_is_clamped_and_nonnegative():
    metered = MeteredBackend(SerialBackend())
    assert metered.utilization(0.0) == 0.0
    metered.map(_nap, [0.01])
    assert 0.0 < metered.utilization(0.005) <= 1.0  # tiny elapsed: clamped
    assert not metered.supports_overlap  # delegates to the serial inner


def _transform_task(seed=0):
    rng = np.random.default_rng(seed)
    d, n, k = 5, 12, 3
    rotation = np.linalg.qr(rng.normal(size=(d, d)))[0]
    return {
        "X": rng.normal(size=(n, d)),
        "norm_kind": "zscore",
        "norm_a": np.zeros(d),
        "norm_b": np.ones(d),
        "rotation": rotation,
        "translation": rng.uniform(-1, 1, size=d),
        "adaptor_rotations": np.stack([np.eye(d)] * k),
        "sigmas": np.full(k, 0.05),
        "noise_root": 42,
        "window_index": 3,
    }


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_transform_task_bit_identical_across_backends(kind):
    """The worker functions are pure: same task, same bytes, any backend."""
    reference = transform_window(_transform_task())
    with ShardPool(ShardPlan(2), kind) as pool:
        results = pool.map(transform_window, [_transform_task()] * 4)
    for result in results:
        assert np.array_equal(result["X_target"], reference["X_target"])
        assert np.array_equal(result["X_norm"], reference["X_norm"])


def test_noise_depends_on_window_and_party_keys_only():
    """Noise is keyed by (root, window, party): re-running a task reproduces
    it; changing the window index changes the realization."""
    a = transform_window(_transform_task())
    b = transform_window(_transform_task())
    assert np.array_equal(a["X_target"], b["X_target"])
    shifted = _transform_task()
    shifted["window_index"] = 4
    c = transform_window(shifted)
    assert not np.array_equal(a["X_target"], c["X_target"])
    assert np.array_equal(a["X_norm"], c["X_norm"])  # noise-free part equal
