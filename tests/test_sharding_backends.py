"""Executor backends: ordered results, equivalence, lifecycle."""

import numpy as np
import pytest

from repro.sharding import (
    ProcessBackend,
    SerialBackend,
    ShardPool,
    ShardPlan,
    ThreadBackend,
    make_backend,
)
from repro.sharding.worker import transform_window


def _square(task):
    return task * task


def test_serial_backend_preserves_order():
    assert SerialBackend().map(_square, list(range(10))) == [
        i * i for i in range(10)
    ]


@pytest.mark.parametrize("backend_cls", [ThreadBackend, ProcessBackend])
def test_pool_backends_match_serial(backend_cls):
    tasks = list(range(20))
    expected = SerialBackend().map(_square, tasks)
    with backend_cls(n_workers=3) as backend:
        assert backend.map(_square, tasks) == expected


def test_empty_task_list_is_fine():
    for kind in ("serial", "thread", "process"):
        with make_backend(kind, 2) as backend:
            assert backend.map(_square, []) == []


def test_make_backend_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_backend("gpu")
    with pytest.raises(ValueError):
        ThreadBackend(0)


def test_pool_survives_close_and_reuse():
    backend = ThreadBackend(2)
    assert backend.map(_square, [1, 2]) == [1, 4]
    backend.close()
    backend.close()  # idempotent
    # A fresh pool is created lazily on the next map.
    assert backend.map(_square, [3]) == [9]
    backend.close()


def _transform_task(seed=0):
    rng = np.random.default_rng(seed)
    d, n, k = 5, 12, 3
    rotation = np.linalg.qr(rng.normal(size=(d, d)))[0]
    return {
        "X": rng.normal(size=(n, d)),
        "norm_kind": "zscore",
        "norm_a": np.zeros(d),
        "norm_b": np.ones(d),
        "rotation": rotation,
        "translation": rng.uniform(-1, 1, size=d),
        "adaptor_rotations": np.stack([np.eye(d)] * k),
        "sigmas": np.full(k, 0.05),
        "noise_root": 42,
        "window_index": 3,
    }


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_transform_task_bit_identical_across_backends(kind):
    """The worker functions are pure: same task, same bytes, any backend."""
    reference = transform_window(_transform_task())
    with ShardPool(ShardPlan(2), kind) as pool:
        results = pool.map(transform_window, [_transform_task()] * 4)
    for result in results:
        assert np.array_equal(result["X_target"], reference["X_target"])
        assert np.array_equal(result["X_norm"], reference["X_norm"])


def test_noise_depends_on_window_and_party_keys_only():
    """Noise is keyed by (root, window, party): re-running a task reproduces
    it; changing the window index changes the realization."""
    a = transform_window(_transform_task())
    b = transform_window(_transform_task())
    assert np.array_equal(a["X_target"], b["X_target"])
    shifted = _transform_task()
    shifted["window_index"] = 4
    c = transform_window(shifted)
    assert not np.array_equal(a["X_target"], c["X_target"])
    assert np.array_equal(a["X_norm"], c["X_norm"])  # noise-free part equal
