"""Direct coverage for the snapshot-time registry collectors.

The collectors read their stat holders duck-typed, so these tests drive
them with plain namespace fakes — no pool, plane, or service required —
and pin the exact gauge families each one publishes.
"""

from types import SimpleNamespace

from repro.obs import (
    MetricsRegistry,
    ingest_collector,
    pool_collector,
    service_collector,
)


def _gauges(snapshot, family):
    return snapshot[family]["values"]


def test_ingest_collector_publishes_totals_and_per_provider_gauges():
    plane = SimpleNamespace(
        stats=lambda: SimpleNamespace(
            records=120,
            late=7,
            dropped=2,
            readmitted=4,
            upserted=1,
            max_skew=9,
            providers=[
                SimpleNamespace(name="alice", records=70),
                SimpleNamespace(name="bob", records=50),
            ],
        )
    )
    registry = MetricsRegistry()
    registry.register_collector(ingest_collector(plane))
    snap = registry.snapshot()
    assert _gauges(snap, "repro_ingest_records")[""] == 120
    assert _gauges(snap, "repro_ingest_late_records")[""] == 7
    assert _gauges(snap, "repro_ingest_dropped_records")[""] == 2
    assert _gauges(snap, "repro_ingest_readmitted_records")[""] == 4
    assert _gauges(snap, "repro_ingest_upserted_records")[""] == 1
    assert _gauges(snap, "repro_ingest_max_skew")[""] == 9
    per_provider = _gauges(snap, "repro_ingest_provider_records")
    assert per_provider['{provider="alice"}'] == 70
    assert per_provider['{provider="bob"}'] == 50


def test_ingest_collector_rereads_the_plane_every_snapshot():
    stats = SimpleNamespace(
        records=1, late=0, dropped=0, readmitted=0, upserted=0,
        max_skew=0, providers=[],
    )
    plane = SimpleNamespace(stats=lambda: stats)
    registry = MetricsRegistry()
    registry.register_collector(ingest_collector(plane))
    assert _gauges(registry.snapshot(), "repro_ingest_records")[""] == 1
    stats.records = 5  # the holder stays the source of truth
    assert _gauges(registry.snapshot(), "repro_ingest_records")[""] == 5


def test_pool_collector_publishes_the_occupancy_ledger():
    pool = SimpleNamespace(
        n_workers=4,
        tasks_dispatched=33,
        batches_dispatched=11,
        busy_seconds=1.25,
    )
    registry = MetricsRegistry()
    registry.register_collector(pool_collector(pool))
    snap = registry.snapshot()
    assert _gauges(snap, "repro_pool_workers")[""] == 4
    assert _gauges(snap, "repro_pool_tasks_dispatched")[""] == 33
    assert _gauges(snap, "repro_pool_batches_dispatched")[""] == 11
    assert _gauges(snap, "repro_pool_busy_seconds")[""] == 1.25


def test_service_collector_publishes_lifecycle_states_and_pool():
    service = SimpleNamespace(
        stats=lambda: SimpleNamespace(
            submitted=10,
            rejected=1,
            completed=7,
            failed=1,
            cancelled=1,
            active=2,
            records=4096,
            messages=128,
            bytes=65536,
            pool=SimpleNamespace(utilization=0.5),
        )
    )
    registry = MetricsRegistry()
    registry.register_collector(service_collector(service))
    snap = registry.snapshot()
    sessions = _gauges(snap, "repro_serve_sessions")
    assert sessions['{state="submitted"}'] == 10
    assert sessions['{state="rejected"}'] == 1
    assert sessions['{state="completed"}'] == 7
    assert sessions['{state="failed"}'] == 1
    assert sessions['{state="cancelled"}'] == 1
    assert sessions['{state="active"}'] == 2
    assert _gauges(snap, "repro_serve_records")[""] == 4096
    assert _gauges(snap, "repro_serve_messages")[""] == 128
    assert _gauges(snap, "repro_serve_bytes")[""] == 65536
    assert _gauges(snap, "repro_serve_pool_utilization")[""] == 0.5


def test_collectors_compose_on_one_registry():
    pool = SimpleNamespace(
        n_workers=2, tasks_dispatched=0, batches_dispatched=0, busy_seconds=0.0
    )
    plane = SimpleNamespace(
        stats=lambda: SimpleNamespace(
            records=3, late=0, dropped=0, readmitted=0, upserted=0,
            max_skew=0, providers=[],
        )
    )
    registry = MetricsRegistry()
    registry.register_collector(pool_collector(pool))
    registry.register_collector(ingest_collector(plane))
    snap = registry.snapshot()
    assert _gauges(snap, "repro_pool_workers")[""] == 2
    assert _gauges(snap, "repro_ingest_records")[""] == 3


def test_cluster_collector_publishes_merged_and_per_replica_gauges():
    from repro.obs import cluster_collector

    cluster = SimpleNamespace(
        stats=lambda: SimpleNamespace(
            submitted=5,
            rejected=1,
            completed=3,
            failed=0,
            cancelled=0,
            evicted=2,
            active=2,
            parked=1,
            replicas=2,
            migrations=2,
            rebalances=1,
            per_replica=[
                SimpleNamespace(
                    active=2, completed=1,
                    pool=SimpleNamespace(utilization=0.75),
                ),
                SimpleNamespace(
                    active=0, completed=2,
                    pool=SimpleNamespace(utilization=0.25),
                ),
            ],
        )
    )
    registry = MetricsRegistry()
    registry.register_collector(cluster_collector(cluster))
    snap = registry.snapshot()
    sessions = _gauges(snap, "repro_cluster_sessions")
    assert sessions['{state="submitted"}'] == 5
    assert sessions['{state="parked"}'] == 1
    assert sessions['{state="evicted"}'] == 2
    assert _gauges(snap, "repro_cluster_replicas")[""] == 2
    assert _gauges(snap, "repro_cluster_migrations")[""] == 2
    assert _gauges(snap, "repro_cluster_rebalances")[""] == 1
    active = _gauges(snap, "repro_cluster_replica_active")
    assert active['{replica="0"}'] == 2 and active['{replica="1"}'] == 0
    util = _gauges(snap, "repro_cluster_replica_utilization")
    assert util['{replica="0"}'] == 0.75 and util['{replica="1"}'] == 0.25


def test_cluster_collector_on_a_live_cluster():
    from repro.cluster import ClusterController
    from repro.obs import Telemetry
    from repro.serve import SessionSpec

    telemetry = Telemetry.disabled()
    with ClusterController(replicas=2, telemetry=telemetry) as cluster:
        cluster.run([
            SessionSpec(kind="batch", dataset="iris", k=3, seed=s)
            for s in range(2)
        ])
        snap = telemetry.metrics.snapshot()
    assert _gauges(snap, "repro_cluster_sessions")['{state="completed"}'] == 2
    assert _gauges(snap, "repro_cluster_replicas")[""] == 2
