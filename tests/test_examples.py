"""Smoke tests: every shipped example must run end to end.

Examples are deliverables, not decoration — these tests execute each one's
``main()`` and sanity-check the narrative output so the examples cannot rot
as the library evolves.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "attack_resilience",
    "classifier_invariance",
    "multiparty_collaboration",
    "dynamic_membership",
    "federation_planning",
    "serve_mixed_workload",
]


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_cost_of_privacy(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "accuracy cost of privacy" in out
    assert "forwarded the dataset" in out


def test_attack_resilience_shows_strongest_adversary(capsys):
    load_example("attack_resilience").main()
    out = capsys.readouterr().out
    assert "binding adversary" in out
    assert "optimality rate" in out


def test_classifier_invariance_contrasts_learners(capsys):
    load_example("classifier_invariance").main()
    out = capsys.readouterr().out
    assert "1.000" in out  # exact invariance rows
    assert "Space Adaptation Protocol" in out


def test_multiparty_collaboration_audits_views(capsys):
    load_example("multiparty_collaboration").main()
    out = capsys.readouterr().out
    assert "miner's view" in out
    assert "identifiability" in out


def test_dynamic_membership_joins_late_provider(capsys):
    load_example("dynamic_membership").main()
    out = capsys.readouterr().out
    assert "phase 2" in out
    assert "direct transmissions: 0" in out


def test_federation_planning_recommends_a_size(capsys):
    load_example("federation_planning").main()
    out = capsys.readouterr().out
    assert "minimum k" in out
    assert "verification run" in out
