"""Tests for the pure exchange-plan logic."""

import numpy as np
import pytest

from repro.core.protocol import ExchangePlan, draw_exchange_plan


@pytest.fixture
def plan(rng):
    return draw_exchange_plan(5, rng)


class TestDraw:
    @pytest.mark.parametrize("k", [2, 3, 5, 10])
    def test_valid_for_all_k(self, k, rng):
        plan = draw_exchange_plan(k, rng)
        plan.validate()
        assert plan.k == k

    def test_requires_two_providers(self, rng):
        with pytest.raises(ValueError):
            draw_exchange_plan(1, rng)

    def test_tags_unique(self, rng):
        plan = draw_exchange_plan(8, rng)
        assert len(set(plan.tags)) == 8

    def test_deterministic_under_seed(self):
        a = draw_exchange_plan(6, np.random.default_rng(1))
        b = draw_exchange_plan(6, np.random.default_rng(1))
        assert a.tau == b.tau and a.tags == b.tags


class TestRouting:
    def test_every_source_delivered_once(self, plan):
        delivered = []
        for receiver in range(plan.k):
            delivered.extend(plan.sources_received_by(receiver))
        assert sorted(delivered) == list(range(plan.k))

    def test_coordinator_receives_nothing(self, plan):
        assert plan.sources_received_by(plan.coordinator) == []

    def test_redirect_receiver_gets_extra(self, plan):
        counts = {r: len(plan.sources_received_by(r)) for r in range(plan.k)}
        assert counts[plan.coordinator] == 0
        assert counts[plan.redirect_receiver] in (1, 2)
        assert sum(counts.values()) == plan.k

    def test_receiver_of_source_consistent(self, plan):
        for source in range(plan.k):
            receiver = plan.receiver_of_source(source)
            assert source in plan.sources_received_by(receiver)

    def test_forwarding_assignments_cover_all_sources(self, plan):
        assignments = plan.forwarding_assignments()
        assert sorted(assignments) == list(range(plan.k))
        assert all(0 <= r < plan.k - 1 or r == plan.redirect_receiver
                   for r in assignments.values())

    def test_tag_lookup_roundtrip(self, plan):
        for source in range(plan.k):
            tag = plan.tag_of_source(source)
            assert plan.source_of_tag(tag) == source


class TestValidation:
    def base_kwargs(self):
        return dict(
            k=3,
            coordinator=2,
            tau=(1, 2, 0),
            redirect_receiver=0,
            tags=("a", "b", "c"),
        )

    def test_valid_construction(self):
        ExchangePlan(**self.base_kwargs()).validate()

    def test_bad_permutation_rejected(self):
        kwargs = self.base_kwargs()
        kwargs["tau"] = (0, 0, 1)
        with pytest.raises(ValueError):
            ExchangePlan(**kwargs)

    def test_wrong_coordinator_rejected(self):
        kwargs = self.base_kwargs()
        kwargs["coordinator"] = 0
        with pytest.raises(ValueError):
            ExchangePlan(**kwargs)

    def test_coordinator_as_redirect_rejected(self):
        kwargs = self.base_kwargs()
        kwargs["redirect_receiver"] = 2
        with pytest.raises(ValueError):
            ExchangePlan(**kwargs)

    def test_duplicate_tags_rejected(self):
        kwargs = self.base_kwargs()
        kwargs["tags"] = ("a", "a", "c")
        with pytest.raises(ValueError):
            ExchangePlan(**kwargs)


class TestDistribution:
    def test_permutation_is_uniformish(self):
        """tau[0] should be close to uniform over sources."""
        rng = np.random.default_rng(0)
        counts = np.zeros(4)
        n = 4000
        for _ in range(n):
            plan = draw_exchange_plan(4, rng)
            counts[plan.tau[0]] += 1
        np.testing.assert_allclose(counts / n, 0.25, atol=0.03)

    def test_redirect_is_uniformish(self):
        rng = np.random.default_rng(0)
        counts = np.zeros(4)
        n = 4000
        for _ in range(n):
            plan = draw_exchange_plan(5, rng)
            counts[plan.redirect_receiver] += 1
        np.testing.assert_allclose(counts / n, 0.25, atol=0.03)
