"""Online miners: incremental learning and exact space migration."""

import numpy as np
import pytest

from repro.core.adaptation import compute_adaptor
from repro.core.perturbation import sample_perturbation
from repro.streaming.online_miner import (
    OnlineLinearSVM,
    ReservoirKNN,
    make_online_classifier,
)


def two_blobs(rng, n=200, d=4, gap=3.0):
    X = np.vstack(
        [rng.normal(size=(n // 2, d)), rng.normal(size=(n // 2, d)) + gap]
    )
    y = np.repeat([0, 1], n // 2)
    order = rng.permutation(n)
    return X[order], y[order]


@pytest.mark.parametrize("name", ["knn", "linear_svm"])
def test_learns_separable_stream(name, rng):
    X, y = two_blobs(rng)
    model = make_online_classifier(name, seed=0)
    for start in range(0, 160, 40):  # four windows
        model.partial_fit(X[start : start + 40], y[start : start + 40])
    accuracy = float(np.mean(model.predict(X[160:]) == y[160:]))
    assert accuracy > 0.9
    assert model.n_seen == 160


def test_predict_before_fit_returns_zeros(rng):
    for name in ("knn", "linear_svm"):
        model = make_online_classifier(name, seed=0)
        assert np.array_equal(model.predict(rng.normal(size=(5, 3))), np.zeros(5))


def test_reservoir_respects_capacity(rng):
    model = ReservoirKNN(capacity=32, seed=0)
    X, y = two_blobs(rng, n=400)
    model.partial_fit(X, y)
    assert model.reservoir_size == 32
    assert model.n_seen == 400


def test_reservoir_is_uniform_enough(rng):
    # Push 0..999 through a 100-slot reservoir; the kept sample's mean
    # should be near the stream mean, not stuck at either end.
    model = ReservoirKNN(capacity=100, seed=1)
    values = np.arange(1000, dtype=float).reshape(-1, 1)
    model.partial_fit(values, np.zeros(1000, dtype=int))
    kept = model.reservoir_rows.ravel()
    assert 350 < kept.mean() < 650


@pytest.mark.parametrize("name", ["knn", "linear_svm"])
def test_adapt_space_preserves_predictions_exactly(name, rng):
    """Migrating model state old-target -> new-target must not change any
    prediction when the query rows are migrated the same way."""
    X, y = two_blobs(rng)
    old_target = sample_perturbation(X.shape[1], rng)
    new_target = sample_perturbation(X.shape[1], rng)
    X_old = old_target.transform_clean(X.T).T

    model = make_online_classifier(name, seed=0)
    model.partial_fit(X_old[:150], y[:150])
    queries_old = X_old[150:]
    before = model.predict(queries_old)

    migration = compute_adaptor(old_target, new_target)
    model.adapt_space(migration)
    queries_new = np.asarray(migration.apply(queries_old.T)).T
    after = model.predict(queries_new)
    assert np.array_equal(before, after)

    # And the migrated state agrees with data perturbed by the new target.
    direct = new_target.transform_clean(X[150:].T).T
    assert np.allclose(queries_new, direct)


def test_adapt_space_before_fit_is_noop(rng):
    migration = compute_adaptor(
        sample_perturbation(3, rng), sample_perturbation(3, rng)
    )
    for name in ("knn", "linear_svm"):
        model = make_online_classifier(name, seed=0)
        model.adapt_space(migration)  # must not raise
        assert model.n_seen == 0


def test_svm_discovers_classes_online(rng):
    model = OnlineLinearSVM(seed=0)
    X0 = rng.normal(size=(30, 3))
    model.partial_fit(X0, np.zeros(30, dtype=int))
    assert list(model.classes_) == [0]
    model.partial_fit(X0 + 4.0, np.full(30, 2, dtype=int))
    assert list(model.classes_) == [0, 2]
    scores = model.decision_matrix(rng.normal(size=(5, 3)))
    assert scores.shape == (5, 2)


def test_validation_errors(rng):
    with pytest.raises(ValueError):
        ReservoirKNN(capacity=0)
    with pytest.raises(ValueError):
        OnlineLinearSVM(lam=0.0)
    with pytest.raises(ValueError):
        make_online_classifier("decision_tree")
    model = OnlineLinearSVM(seed=0)
    model.partial_fit(rng.normal(size=(10, 3)), np.zeros(10, dtype=int))
    with pytest.raises(ValueError):
        model.partial_fit(rng.normal(size=(10, 4)), np.zeros(10, dtype=int))


def test_reservoir_preserves_arbitrary_label_types():
    """Labels must never be coerced to the first batch's dtype: a later
    wider string (or a float after ints) has to survive intact."""
    model = ReservoirKNN(capacity=8, n_neighbors=1, seed=0)
    model.partial_fit(np.zeros((2, 2)), np.array(["a", "b"]))
    model.partial_fit(np.ones((1, 2)) * 9, np.array(["abc"]))
    assert model.predict(np.ones((1, 2)) * 9)[0] == "abc"
    state = model.export_predict_state()
    assert "abc" in state["labels"].tolist()

    mixed = ReservoirKNN(capacity=8, n_neighbors=1, seed=0)
    mixed.partial_fit(np.zeros((2, 2)), np.array([1, 2]))
    mixed.partial_fit(np.ones((1, 2)) * 9, np.array([2.7]))
    assert float(mixed.predict(np.ones((1, 2)) * 9)[0]) == 2.7
