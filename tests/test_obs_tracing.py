"""Tracing spans: nesting, sinks, and the free disabled path."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Telemetry,
    Tracer,
)


def test_spans_record_parent_ids_and_attrs():
    sink = ListSink()
    tracer = Tracer(sink)
    root = tracer.span("session", kind="stream")
    child = tracer.span("round", parent=root, round=0)
    child.end(windows=3)
    root.end()
    rec_child, rec_root = sink.spans
    assert rec_root["name"] == "session"
    assert rec_root["parent_id"] is None
    assert rec_child["parent_id"] == rec_root["span_id"]
    assert rec_child["attrs"] == {"round": 0, "windows": 3}
    assert rec_child["duration"] >= 0.0


def test_span_ids_are_unique_and_increasing():
    tracer = Tracer(ListSink())
    ids = [tracer.span(f"s{i}").span_id for i in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_end_is_idempotent_and_set_is_chainable():
    sink = ListSink()
    tracer = Tracer(sink)
    span = tracer.span("work").set(a=1).set(b=2)
    span.end()
    first_duration = span.duration
    span.end(c=3)  # no second emission, no duration change
    assert len(sink.spans) == 1
    assert span.duration == first_duration
    assert sink.spans[0]["attrs"] == {"a": 1, "b": 2}


def test_with_block_records_error_kind():
    sink = ListSink()
    tracer = Tracer(sink)
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert sink.spans[0]["attrs"]["error"] == "RuntimeError"


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = Tracer(JsonlSink(str(path)))
    with tracer.span("outer") as outer:
        tracer.span("inner", parent=outer, n=1).end()
    tracer.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in records] == ["inner", "outer"]  # end order
    assert records[0]["parent_id"] == records[1]["span_id"]
    tracer.close()  # idempotent


def test_null_tracer_is_a_shared_noop():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", parent=None, big=1)
    assert span is NULL_TRACER.span("other")  # one shared instance
    assert span.enabled is False
    assert span.set(x=1) is span
    span.end()
    with span:
        pass
    assert span.attrs == {}
    NULL_TRACER.close()


def test_real_span_under_null_parent_is_a_root():
    sink = ListSink()
    tracer = Tracer(sink)
    null_parent = NullTracer().span("off")
    tracer.span("child", parent=null_parent).end()
    assert sink.spans[0]["parent_id"] is None


def test_telemetry_bundle_scoping():
    tel = Telemetry.in_memory()
    assert tel.enabled
    root = tel.span("session")
    scoped = tel.child(root)
    assert scoped.tracer is tel.tracer
    assert scoped.metrics is tel.metrics
    scoped.span("round").end()
    root.end()
    tel.close()
    spans = tel.tracer.sink.spans
    assert spans[0]["name"] == "round"
    assert spans[0]["parent_id"] == spans[1]["span_id"]


def test_disabled_telemetry_still_counts():
    tel = Telemetry.disabled()
    assert not tel.enabled
    tel.metrics.counter("n_total").inc()
    assert tel.span("ignored").enabled is False
    assert tel.metrics.snapshot()["n_total"]["values"][""] == 1
