"""Drift-detector behaviour: fire on shift, stay quiet when stationary."""

import numpy as np
import pytest

from repro.streaming.drift import KSDetector, MeanVarianceDetector, make_detector
from repro.streaming.sources import make_stream
from repro.streaming.windows import TumblingWindow


def windows_of(source, size=64):
    buf = TumblingWindow(size)
    windows = []
    for record in source:
        windows.extend(buf.push(record.x, record.y, record.time))
    return windows


@pytest.mark.parametrize("kind", ["meanvar", "ks"])
def test_quiet_on_stationary_stream(kind):
    detector = make_detector(kind)
    source = make_stream("wine", kind="stationary", n_records=64 * 20, seed=0)
    fired = [detector.observe(w.X).fired for w in windows_of(source)]
    assert not any(fired)


@pytest.mark.parametrize("kind", ["meanvar", "ks"])
def test_fires_on_abrupt_drift(kind):
    detector = make_detector(kind)
    source = make_stream("wine", kind="abrupt", n_records=64 * 20, seed=0)
    windows = windows_of(source)
    drift_window = source.drift_index // 64
    reports = [detector.observe(w.X) for w in windows]
    assert not any(r.fired for r in reports[:drift_window])
    assert reports[drift_window].fired
    assert reports[drift_window].column is not None


def test_first_window_installs_reference_without_firing():
    detector = MeanVarianceDetector()
    rng = np.random.default_rng(0)
    report = detector.observe(rng.normal(size=(50, 3)))
    assert not report.fired and detector.has_reference


def test_rebase_silences_a_sustained_shift():
    detector = MeanVarianceDetector()
    rng = np.random.default_rng(1)
    before = rng.normal(size=(100, 4))
    after = before + 3.0
    detector.observe(before)
    report = detector.observe(after + 0.01 * rng.normal(size=after.shape))
    assert report.fired and report.kind == "mean"
    detector.rebase(after)
    report = detector.observe(after + 0.01 * rng.normal(size=after.shape))
    assert not report.fired


def test_variance_collapse_fires():
    """A column freezing to a constant (stuck sensor) is extreme scale
    drift and must fire, while an always-constant column stays quiet."""
    rng = np.random.default_rng(3)
    detector = MeanVarianceDetector()
    reference = np.column_stack(
        [rng.normal(size=100), np.full(100, 7.0)]  # varying + constant
    )
    detector.observe(reference)
    frozen = np.column_stack([np.zeros(100), np.full(100, 7.0)])
    report = detector.observe(frozen)
    assert report.fired and report.kind == "variance" and report.column == 0
    # Both columns constant and unchanged from a constant reference: quiet.
    detector2 = MeanVarianceDetector()
    detector2.observe(np.column_stack([np.full(50, 1.0), np.full(50, 7.0)]))
    report2 = detector2.observe(np.column_stack([np.full(50, 1.0), np.full(50, 7.0)]))
    assert not report2.fired


def test_variance_criterion_fires_on_scale_change():
    detector = MeanVarianceDetector()
    rng = np.random.default_rng(2)
    reference = rng.normal(size=(200, 3))
    detector.observe(reference)
    scaled = rng.normal(size=(200, 3)) * np.array([3.0, 1.0, 1.0])
    report = detector.observe(scaled)
    assert report.fired and report.kind == "variance" and report.column == 0


def test_ks_statistic_known_values():
    a = np.array([0.0, 1.0, 2.0, 3.0])
    assert KSDetector.ks_statistic(a, a) == 0.0
    b = a + 100.0
    assert KSDetector.ks_statistic(a, b) == 1.0


def test_validation_errors():
    detector = MeanVarianceDetector()
    with pytest.raises(ValueError):
        detector.observe(np.zeros(3))
    detector.observe(np.random.default_rng(0).normal(size=(10, 3)))
    with pytest.raises(ValueError):
        detector.observe(np.zeros((10, 4)))
    with pytest.raises(ValueError):
        MeanVarianceDetector(mean_threshold=0.0)
    with pytest.raises(ValueError):
        KSDetector(alpha=0.2)
    with pytest.raises(ValueError):
        make_detector("page-hinkley")
