#!/usr/bin/env python
"""Federation planning: should my organization join, and at what size?

The paper's Section 2-3 quantities are decision tools: a prospective data
provider can measure its own optimality rate, set an expected satisfaction
level, and read off the minimum federation size at which joining SAP is no
riskier than mining alone.  This example walks that decision for one
provider:

1. estimate the local privacy landscape (``rho_bar``, ``b_hat``, optimality
   rate) by running the randomized optimizer on the provider's own table;
2. evaluate equation (1) and (2) risks across federation sizes;
3. apply the Figure-4 bound for a range of satisfaction expectations;
4. sanity-check the decision with one real protocol run at the chosen k.

Run:  python examples/federation_planning.py
"""

import numpy as np

from repro import (
    ClassifierSpec,
    PerturbationOptimizer,
    SAPConfig,
    load_dataset,
    minimum_parties,
    risk_of_breach,
    run_sap_session,
    sap_risk,
    source_identifiability,
    standalone_risk,
)
from repro.analysis.reporting import ascii_table
from repro.datasets import normalize_dataset


def main() -> None:
    # --- 1. measure the local privacy landscape -------------------------
    table = normalize_dataset(load_dataset("heart"))
    print(f"our table: {table.name}, {table.n_rows} rows x {table.n_features} cols")
    optimizer = PerturbationOptimizer(
        n_rounds=20, local_steps=6, noise_sigma=0.05, seed=7
    )
    result = optimizer.optimize(table.columns())
    print()
    print("local optimization landscape:")
    print(result.summary())
    opt_rate = result.optimality_rate
    rho, b = result.rho_bar, result.b_hat

    # --- 2. risks across federation sizes -------------------------------
    print()
    print("risk across federation sizes (s = 0.95 expected satisfaction):")
    rows = []
    for k in (2, 3, 4, 5, 8, 12):
        pi = source_identifiability(k)
        rows.append(
            [
                k,
                pi,
                risk_of_breach(pi, 0.95, rho, b),
                sap_risk(b, rho, 0.95, k),
            ]
        )
    print(
        ascii_table(
            ["k", "identifiability", "risk eq.(1)", "risk eq.(2)"], rows
        )
    )
    print(f"mining alone (standalone risk): {standalone_risk(rho, b):.3f}")

    # --- 3. the Figure-4 bound for our opt-rate -------------------------
    print()
    print(f"minimum parties for our optimality rate ({opt_rate:.3f}):")
    rows = []
    for s0 in (0.90, 0.95, 0.98, 0.99):
        rows.append([f"{s0:.2f}", minimum_parties(s0, opt_rate)])
    print(ascii_table(["expected satisfaction", "minimum k"], rows))

    recommended = minimum_parties(0.95, opt_rate)
    print(f"\n=> at s0 = 0.95 we need at least k = {recommended} providers")

    # --- 4. verify with one real protocol run ---------------------------
    config = SAPConfig(
        k=max(recommended, 3),
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 5}),
        seed=11,
    )
    session = run_sap_session(load_dataset("heart"), config)
    print()
    print(f"verification run at k = {config.k}:")
    print(f"  standard accuracy : {session.accuracy_standard:.3f}")
    print(f"  SAP accuracy      : {session.accuracy_perturbed:.3f}")
    print(f"  deviation         : {session.deviation:+.2f} points")
    print(
        "  joining costs "
        f"{abs(session.deviation):.1f} accuracy points and caps the miner's "
        f"attribution probability at {source_identifiability(config.k):.2f}"
    )


if __name__ == "__main__":
    main()
