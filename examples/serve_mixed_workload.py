#!/usr/bin/env python
"""Serving many sessions: one engine, many tenants, one shared pool.

Two organizations — "acme" and "globex" — use the same Space Adaptation
deployment.  Acme runs one-shot batch collaborations; globex mines live
streams.  A single :class:`repro.MiningService` runs all of it
concurrently over one shared shard-worker pool, with admission control
(at most 3 sessions in flight, 2 more queued) and per-tenant budgets
(globex may only afford one privacy/attack-suite evaluation).

Every tenant's seeds are namespaced, so acme and globex submitting the
*same* spec draw independent randomness — and each session's result is
bit-identical to running its spec alone through ``run_sap_session`` /
``run_stream_session``.

Run:  python examples/serve_mixed_workload.py
"""

from repro import MiningService, SessionSpec, TenantPolicy


def main() -> None:
    # The declarative workload: what to run, not how or where.
    workload = [
        SessionSpec(kind="batch", dataset="wine", k=3, tenant="acme", seed=1),
        SessionSpec(
            kind="stream", dataset="wine", k=3, windows=4, window_size=32,
            stream="abrupt", tenant="globex", compute_privacy=True, seed=1,
        ),
        SessionSpec(
            kind="batch", dataset="iris", k=4, classifier="lda",
            tenant="acme", seed=2,
        ),
        SessionSpec(
            kind="stream", dataset="iris", k=3, windows=4, window_size=32,
            classifier="linear_svm", tenant="globex",
            compute_privacy=False, seed=2,
        ),
    ]

    service = MiningService(
        max_inflight=3,
        queue_limit=2,
        shard_backend="thread",
        shard_workers=2,
        tenants={"globex": TenantPolicy(privacy_budget=1)},
    )
    with service:
        handles = [service.submit(spec) for spec in workload]
        for handle in handles:
            result = handle.result()
            print(f"--- {handle.spec.display_label} "
                  f"({handle.poll()}, {handle.wall_seconds * 1000:.0f} ms)")
            print(result.summary())
            print()
        print("=== service report")
        print(service.stats().summary())


if __name__ == "__main__":
    main()
