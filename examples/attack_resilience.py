#!/usr/bin/env python
"""Attack resilience: why providers optimize their perturbations.

This example reproduces the *privacy* side of the paper (Section 2 and
Figure 2).  One provider holds a table and considers publishing it under a
geometric perturbation.  We:

1. evaluate a random perturbation against the full attack suite — naive
   value-range estimation, FastICA unmixing, known-sample regression, and
   distance-inference matching — to see which adversary binds the
   guarantee;
2. run the randomized perturbation optimizer and show the distribution of
   guarantees it achieves vs. random draws (the paper's Figure 2);
3. sweep the noise level to expose the privacy/accuracy dial the protocol's
   "common noise component" controls.

Run:  python examples/attack_resilience.py
"""

import numpy as np

from repro import (
    MinMaxNormalizer,
    PerturbationOptimizer,
    default_suite,
    fast_suite,
    load_dataset,
    sample_perturbation,
)
from repro.analysis.reporting import text_histogram
from repro.datasets.schema import Dataset


def normalized_columns(name: str, max_rows: int = 300) -> np.ndarray:
    table = load_dataset(name)
    X = MinMaxNormalizer().fit_transform(table.X)
    ds = Dataset(name=table.name, X=X, y=table.y)
    if ds.n_rows > max_rows:
        ds = ds.subset(np.arange(max_rows))
    return ds.columns()


def main() -> None:
    X = normalized_columns("diabetes")
    rng = np.random.default_rng(7)

    # --- 1. one random perturbation vs the full attack suite -------------
    perturbation = sample_perturbation(X.shape[0], rng, noise_sigma=0.05)
    report = default_suite(known_fraction=0.05).evaluate(perturbation, X, rng)
    print("attack suite against one random perturbation (sigma = 0.05):")
    print(report.summary())
    print(f"binding adversary: {report.strongest_attack}")
    print()

    # --- 2. Figure 2: random vs optimized guarantee distributions --------
    optimizer = PerturbationOptimizer(
        n_rounds=25, local_steps=8, noise_sigma=0.05, seed=7
    )
    result = optimizer.optimize(X)
    print(text_histogram(result.random_privacies,
                         label="random perturbations (minimum privacy guarantee)"))
    print()
    print(text_histogram(result.round_privacies,
                         label="optimized perturbations"))
    print()
    print(result.summary())
    print()

    # --- 3. the noise dial ------------------------------------------------
    print("noise level vs privacy guarantee (fast suite):")
    suite = fast_suite()
    for sigma in (0.0, 0.02, 0.05, 0.1, 0.2):
        p = sample_perturbation(X.shape[0], np.random.default_rng(3), sigma)
        guarantee = suite.guarantee(p, X, np.random.default_rng(9))
        bar = "#" * int(round(guarantee * 50))
        print(f"  sigma={sigma:<5} rho={guarantee:.3f}  {bar}")


if __name__ == "__main__":
    main()
