#!/usr/bin/env python
"""Dynamic membership: a provider joins *after* the initial mining round.

The published protocol is static — k providers, one round.  This example
demonstrates the library's dynamic-join extension (a natural future-work
item for a service-oriented deployment): a late provider is admitted by
the coordinator, adapts its perturbed table into the already-fixed target
space, routes it through a random existing forwarder (preserving the
anonymity pattern), and the miner incrementally re-mines.

It also prints the message-sequence trace of both phases via
``repro.simnet.trace`` so you can see the protocol shape directly.

Run:  python examples/dynamic_membership.py
"""

import numpy as np

from repro import ClassifierSpec, SAPConfig, load_dataset
from repro.core.session import stratified_test_mask
from repro.datasets.partition import partition_uniform
from repro.parties.coordinator import Coordinator
from repro.parties.miner import ServiceProvider
from repro.parties.provider import DataProvider
from repro.simnet.channel import Network
from repro.simnet.trace import message_flow_summary, render_trace


def main() -> None:
    table = load_dataset("breast_w")
    config = SAPConfig(
        k=4, classifier=ClassifierSpec("knn", {"n_neighbors": 5}), seed=31
    )
    master = np.random.default_rng(config.seed)

    # Reserve a slice for the late joiner; the initial 4 providers share
    # the rest.
    joiner_rows = np.arange(0, 120)
    initial = table.subset(np.arange(120, table.n_rows), name="initial-pool")
    parts = partition_uniform(initial, config.k, master)

    network = Network(seed=7)
    providers = []
    for index in range(config.k - 1):
        local = initial.subset(parts[index])
        providers.append(
            DataProvider(
                name=config.provider_name(index),
                network=network,
                dataset=local,
                test_mask=stratified_test_mask(local.y, 0.3, master),
                config=config,
                seed=int(master.integers(2**32)),
            )
        )
    local = initial.subset(parts[config.k - 1])
    coordinator = Coordinator(
        name=config.provider_name(config.k - 1),
        network=network,
        dataset=local,
        test_mask=stratified_test_mask(local.y, 0.3, master),
        config=config,
        seed=int(master.integers(2**32)),
    )
    miner = ServiceProvider("miner", network, config, seed=1)

    # --- phase 1: the paper's protocol ---------------------------------
    network.simulator.schedule(0.0, coordinator.start)
    network.run()
    phase1_messages = len(network.ledger.endpoint)
    print("phase 1 complete:")
    print(f"  pooled rows : {miner.result.pooled_labels.shape[0]}")
    print(f"  accuracy    : {miner.result.accuracy:.3f}")
    print()
    print("protocol fingerprint (phase 1):")
    print(message_flow_summary(network.ledger))
    print()

    # --- phase 2: a provider joins late --------------------------------
    joiner_table = table.subset(joiner_rows, name="late-hospital")
    joiner = DataProvider(
        name="late-hospital",
        network=network,
        dataset=joiner_table,
        test_mask=stratified_test_mask(joiner_table.y, 0.3, master),
        config=config,
        seed=int(master.integers(2**32)),
    )
    tag = coordinator.admit_provider("late-hospital")
    network.run()

    print(f"phase 2: admitted 'late-hospital' under tag {tag[:8]}...")
    print(f"  pooled rows : {miner.result.pooled_labels.shape[0]} "
          f"(+{joiner_table.n_rows})")
    print(f"  accuracy    : {miner.result.accuracy:.3f}")
    print()
    print("messages exchanged during the join:")
    phase2 = render_trace(network.ledger, show_sizes=True)
    print("\n".join(phase2.splitlines()[phase1_messages:]))
    print()
    direct = [
        obs
        for obs in network.ledger.wire_traffic(sender="late-hospital")
        if obs.recipient == "miner"
    ]
    print(f"joiner -> miner direct transmissions: {len(direct)} "
          "(its table travelled through a forwarder, like everyone's)")


if __name__ == "__main__":
    main()
