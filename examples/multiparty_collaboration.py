#!/usr/bin/env python
"""Multiparty collaboration under the hood: the protocol, step by step.

Where ``quickstart.py`` uses the one-call façade, this example builds the
distributed system explicitly — network, providers, coordinator, miner —
runs the Space Adaptation Protocol, and then *audits* the run through the
adversary ledger:

* what the miner observed (and that it never saw the target parameters);
* what the coordinator observed (and that it never received a dataset);
* the wire eavesdropper's view (sizes and timing only — links are
  encrypted);
* the empirical source identifiability across many protocol runs,
  converging within the paper's 1/(k-1) bound.

It also demonstrates per-party risk accounting: satisfaction levels and
the breach-risk equations (1) and (2).

Run:  python examples/multiparty_collaboration.py
"""

import numpy as np

from repro import ClassifierSpec, SAPConfig, load_dataset, run_sap_session
from repro.analysis.experiments import identifiability_monte_carlo
from repro.analysis.reporting import ascii_table, format_mapping
from repro.simnet.messages import MessageKind


def main() -> None:
    table = load_dataset("heart")
    config = SAPConfig(
        k=6,
        noise_sigma=0.05,
        classifier=ClassifierSpec("knn", {"n_neighbors": 5}),
        optimize_locally=True,       # each provider optimizes its G_i
        optimizer_rounds=6,
        optimizer_local_steps=4,
        seed=2024,
    )

    print(f"running SAP on {table.name!r} with k={config.k} providers...")
    result = run_sap_session(
        table,
        config,
        scheme="class",             # skewed local datasets
        compute_privacy=True,       # risk profiles per party
        keep_network=True,          # keep the ledger for auditing
    )
    print()
    print(result.summary())

    ledger = result.network.ledger

    # ------------------------------------------------------------------
    # audit the miner's view
    # ------------------------------------------------------------------
    print("\n--- miner's view -------------------------------------------")
    miner_view = ledger.view_of(config.miner_name)
    kinds = sorted({obs.kind.value for obs in miner_view})
    print(f"message kinds the miner decrypted : {kinds}")
    assert MessageKind.TARGET_PARAMS.value not in kinds
    forwarded = ledger.plaintexts_seen_by(
        config.miner_name, MessageKind.FORWARDED_DATASET
    )
    rows = [
        [m.sender, m.payload["tag"][:8] + "...", m.payload["features"].shape[1]]
        for m in forwarded
    ]
    print(ascii_table(["forwarder", "tag", "rows"], rows))
    print("(tags are opaque; the miner cannot map them back to sources)")

    # ------------------------------------------------------------------
    # audit the coordinator's view
    # ------------------------------------------------------------------
    print("\n--- coordinator's view -------------------------------------")
    coordinator = config.provider_name(config.k - 1)
    coord_kinds = sorted(
        {obs.kind.value for obs in ledger.view_of(coordinator)}
    )
    print(f"message kinds the coordinator decrypted: {coord_kinds}")
    assert MessageKind.PERTURBED_DATASET.value not in coord_kinds

    # ------------------------------------------------------------------
    # the wire view
    # ------------------------------------------------------------------
    print("\n--- eavesdropper's view ------------------------------------")
    wire = ledger.wire_traffic()
    total = sum(obs.nbytes for obs in wire)
    print(
        format_mapping(
            {
                "transmissions observed": len(wire),
                "ciphertext bytes": total,
                "plaintext visible": "none (encrypt-then-MAC links)",
            }
        )
    )

    # ------------------------------------------------------------------
    # identifiability across many runs
    # ------------------------------------------------------------------
    print("\n--- identifiability (Monte Carlo over exchange plans) ------")
    stats = identifiability_monte_carlo(config.k, n_runs=3000, seed=5)
    print(format_mapping(stats))
    print(
        f"paper's bound 1/(k-1) = {stats['analytic']:.3f}; "
        f"measured worst-case attribution = {stats['empirical_max']:.3f}"
    )


if __name__ == "__main__":
    main()
