#!/usr/bin/env python
"""Classifier invariance: the property that makes geometric perturbation work.

The paper's utility claim is that "many popular classifiers ... are
invariant to geometric transformation".  This example makes that claim
concrete across the library's four learners:

1. train each classifier on the original data and on a rotated+translated
   copy, and show the predictions agree *exactly*;
2. add the noise component at increasing levels and chart how agreement
   (and accuracy) degrade — the trade-off the protocol's common noise
   component navigates;
3. contrast with a deliberately non-invariant scenario (perturbing only
   the training side) to show why the whole pipeline — train and test in
   the same perturbed space — is what the protocol must deliver.

Run:  python examples/classifier_invariance.py
"""

import numpy as np

from repro import (
    KNNClassifier,
    LinearSVMClassifier,
    MinMaxNormalizer,
    SVMClassifier,
    load_dataset,
    sample_perturbation,
)
from repro.analysis.reporting import ascii_table
from repro.core.perturbation import perturb_rows
from repro.core.session import stratified_test_mask
from repro.parties.config import ClassifierSpec, make_classifier


def make_learners():
    return {
        "knn": lambda: KNNClassifier(n_neighbors=5),
        "svm_rbf": lambda: SVMClassifier(C=1.0),
        "linear_svm": lambda: LinearSVMClassifier(epochs=15),
        "perceptron": lambda: make_classifier(ClassifierSpec("perceptron")),
    }


def main() -> None:
    rng = np.random.default_rng(11)
    table = load_dataset("wine")
    X = MinMaxNormalizer().fit_transform(table.X)
    y = table.y
    test_mask = stratified_test_mask(y, 0.3, rng)
    X_train, y_train = X[~test_mask], y[~test_mask]
    X_test, y_test = X[test_mask], y[test_mask]

    # ------------------------------------------------------------------
    # 1. exact invariance under rotation + translation
    # ------------------------------------------------------------------
    perturbation = sample_perturbation(X.shape[1], rng, noise_sigma=0.0)
    X_train_p = perturb_rows(perturbation, X_train)
    X_test_p = perturb_rows(perturbation, X_test)

    rows = []
    for name, factory in make_learners().items():
        plain = factory().fit(X_train, y_train)
        rotated = factory().fit(X_train_p, y_train)
        agreement = float(
            np.mean(plain.predict(X_test) == rotated.predict(X_test_p))
        )
        accuracy = float(np.mean(rotated.predict(X_test_p) == y_test))
        rows.append([name, agreement, accuracy])
    print("exact rotation+translation (sigma = 0):")
    print(ascii_table(["classifier", "prediction agreement", "accuracy"], rows))
    print()

    # ------------------------------------------------------------------
    # 2. degradation with the noise component
    # ------------------------------------------------------------------
    print("noise sweep (KNN):")
    rows = []
    baseline = KNNClassifier(n_neighbors=5).fit(X_train, y_train)
    baseline_accuracy = float(np.mean(baseline.predict(X_test) == y_test))
    for sigma in (0.0, 0.02, 0.05, 0.1, 0.2):
        noisy = sample_perturbation(X.shape[1], np.random.default_rng(3), sigma)
        noise_rng = np.random.default_rng(4)
        Xtr = perturb_rows(noisy, X_train, rng=noise_rng)
        Xte = perturb_rows(noisy, X_test, rng=noise_rng)
        model = KNNClassifier(n_neighbors=5).fit(Xtr, y_train)
        accuracy = float(np.mean(model.predict(Xte) == y_test))
        rows.append([sigma, accuracy, 100 * (accuracy - baseline_accuracy)])
    print(
        ascii_table(
            ["sigma", "accuracy", "deviation (points)"],
            rows,
            float_format="{:+.3f}",
        )
    )
    print()

    # ------------------------------------------------------------------
    # 3. what goes wrong outside a unified space
    # ------------------------------------------------------------------
    mismatched = KNNClassifier(n_neighbors=5).fit(X_train_p, y_train)
    wrong_space = float(np.mean(mismatched.predict(X_test) == y_test))
    print(
        "train perturbed / test unperturbed (spaces not unified): "
        f"accuracy {wrong_space:.3f} vs {baseline_accuracy:.3f} baseline"
    )
    print(
        "=> pooling models across parties requires everyone in ONE space — "
        "which is exactly what the Space Adaptation Protocol provides."
    )


if __name__ == "__main__":
    main()
