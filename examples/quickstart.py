#!/usr/bin/env python
"""Quickstart: one complete privacy-preserving collaboration in ~40 lines.

Five hospitals ("data providers") hold disjoint slices of a diabetes
screening table.  They want a mining service provider to train a KNN
classifier on the pooled data without revealing their raw records or which
hospital contributed which slice.  This script runs the paper's Space
Adaptation Protocol end to end on the simulated network and reports what
the paper's Figures 5/6 report: the accuracy cost of privacy.

Run:  python examples/quickstart.py
"""

from repro import ClassifierSpec, SAPConfig, load_dataset, run_sap_session

def main() -> None:
    # The pooled table (synthetic stand-in for UCI 'diabetes', 768 x 8).
    table = load_dataset("diabetes")
    print(f"pooled dataset : {table.name}, {table.n_rows} rows, "
          f"{table.n_features} features, {len(table.classes)} classes")

    # Five providers; provider 5 doubles as the protocol coordinator.
    config = SAPConfig(
        k=5,
        noise_sigma=0.05,                     # the common noise component
        classifier=ClassifierSpec("knn", {"n_neighbors": 5}),
        test_fraction=0.3,
        seed=42,
    )

    # One call runs everything: normalization, partitioning, each party's
    # geometric perturbation, the random exchange, space adaptation at the
    # miner, pooled training, and the unperturbed baseline on identical rows.
    result = run_sap_session(table, config, scheme="uniform")

    print()
    print(result.summary())
    print()
    print("who forwarded whose data (miner cannot see this mapping):")
    for forwarder, source in result.forwarder_source_pairs:
        print(f"  {forwarder:<12} forwarded the dataset of {source}")
    print()
    print(f"accuracy cost of privacy: {result.deviation:+.2f} points "
          f"({result.accuracy_standard:.3f} -> {result.accuracy_perturbed:.3f})")


if __name__ == "__main__":
    main()
